//! Buckets and bucket sets: the shared state of the bucketing approach.
//!
//! §IV-A: the allocator sorts completed-task records by value and partitions
//! them into contiguous *buckets*. Each bucket reduces to
//!
//! * a **representative value** — the maximum value of its records (what a
//!   task allocated from this bucket receives), and
//! * a **probability value** — the bucket's share of total *significance*
//!   (recency-weighted record mass), used to sample the bucket a new task is
//!   allocated from.
//!
//! We additionally keep each bucket's significance-weighted mean value, which
//! both Greedy and Exhaustive Bucketing use as the estimate of where inside a
//! bucket the next task's consumption will land (`v_lo`, `v_hi`, `v_i`).

use crate::record::ScalarRecord;
use serde::{Deserialize, Serialize};

/// One bucket of a partitioned record list.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bucket {
    /// Representative value: max of the member records (§IV-A).
    pub rep: f64,
    /// Probability of choosing this bucket: its significance share (§IV-A).
    pub prob: f64,
    /// Significance-weighted mean of member values — the algorithms' estimate
    /// of a task landing in this bucket (`v_i` in §IV-C).
    pub wmean: f64,
    /// Number of member records.
    pub count: usize,
    /// Total significance of member records.
    pub sig_sum: f64,
}

/// A partition of a sorted record list into contiguous buckets.
///
/// Break points are stored as *inclusive end indices* of every bucket except
/// the last (which implicitly ends at the last record). E.g. with 10 records,
/// `breaks = [3, 6]` produces buckets over indices `[0..=3]`, `[4..=6]`,
/// `[7..=9]`.
///
/// # Examples
///
/// ```
/// use tora_alloc::record::RecordList;
/// use tora_alloc::bucket::BucketSet;
///
/// // Two clusters of completed-task memory records (value, significance).
/// let records: RecordList = [(200.0, 1.0), (210.0, 2.0), (800.0, 3.0), (820.0, 4.0)]
///     .into_iter()
///     .collect();
/// let set = BucketSet::from_breaks(records.sorted(), &[1]);
/// assert_eq!(set.len(), 2);
/// assert_eq!(set.buckets()[0].rep, 210.0);          // bucket max
/// assert_eq!(set.buckets()[1].rep, 820.0);
/// assert!((set.buckets()[1].prob - 0.7).abs() < 1e-12); // significance share
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct BucketSet {
    buckets: Vec<Bucket>,
}

impl BucketSet {
    /// Partition `records` (sorted ascending by value) at the given break
    /// indices (strictly increasing, each `< records.len() - 1`).
    ///
    /// # Panics
    /// If `records` is empty, breaks are out of range, or not strictly
    /// increasing. Debug builds also assert the records are sorted.
    pub fn from_breaks(records: &[ScalarRecord], breaks: &[usize]) -> Self {
        assert!(!records.is_empty(), "cannot bucket an empty record list");
        debug_assert!(
            records.windows(2).all(|w| w[0].value <= w[1].value),
            "records must be sorted by value"
        );
        let n = records.len();
        let mut buckets = Vec::with_capacity(breaks.len() + 1);
        let total_sig: f64 = records.iter().map(|r| r.sig).sum();
        let mut start = 0usize;
        let mut prev_break: Option<usize> = None;
        for &b in breaks.iter().chain(std::iter::once(&(n - 1))) {
            if let Some(p) = prev_break {
                assert!(b > p, "break indices must be strictly increasing");
            }
            assert!(b < n, "break index {b} out of range for {n} records");
            prev_break = Some(b);
            let members = &records[start..=b];
            let sig_sum: f64 = members.iter().map(|r| r.sig).sum();
            let wmean = members.iter().map(|r| r.value * r.sig).sum::<f64>() / sig_sum;
            buckets.push(Bucket {
                rep: members.last().expect("non-empty bucket").value,
                prob: sig_sum / total_sig,
                wmean,
                count: members.len(),
                sig_sum,
            });
            start = b + 1;
        }
        BucketSet { buckets }
    }

    /// A single bucket containing every record.
    pub fn single(records: &[ScalarRecord]) -> Self {
        Self::from_breaks(records, &[])
    }

    /// The buckets, ordered by increasing representative value.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Whether the set holds no buckets (only true for the `Default` value;
    /// `from_breaks` always yields at least one bucket).
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// The largest representative value (the global max record).
    pub fn max_rep(&self) -> Option<f64> {
        self.buckets.last().map(|b| b.rep)
    }

    /// Sample a bucket index according to the probability values, using a
    /// uniform draw `u ∈ [0, 1)`.
    ///
    /// Taking the draw (instead of an RNG) keeps this pure and testable; the
    /// policy layer supplies randomness.
    pub fn sample(&self, u: f64) -> Option<usize> {
        self.sample_above(f64::NEG_INFINITY, u)
    }

    /// Sample among buckets with `rep > floor`, renormalizing their
    /// probabilities — the retry rule of §IV-A ("only considers buckets that
    /// have the representative values greater than that of the previously
    /// chosen bucket"). Returns `None` when no bucket qualifies.
    pub fn sample_above(&self, floor: f64, u: f64) -> Option<usize> {
        let first = self.buckets.partition_point(|b| b.rep <= floor);
        if first == self.buckets.len() {
            return None;
        }
        let total: f64 = self.buckets[first..].iter().map(|b| b.prob).sum();
        if total <= 0.0 {
            // Degenerate weights: fall back to the highest bucket.
            return Some(self.buckets.len() - 1);
        }
        let mut acc = 0.0;
        let target = u.clamp(0.0, 1.0 - f64::EPSILON) * total;
        for (i, b) in self.buckets.iter().enumerate().skip(first) {
            acc += b.prob;
            if target < acc {
                return Some(i);
            }
        }
        Some(self.buckets.len() - 1)
    }

    /// Validate the §IV-A invariants; returns an error string describing the
    /// first violation. Used by tests and debug assertions.
    pub fn check_invariants(&self, records: &[ScalarRecord]) -> Result<(), String> {
        if self.buckets.is_empty() {
            return Err("bucket set is empty".into());
        }
        let count: usize = self.buckets.iter().map(|b| b.count).sum();
        if count != records.len() {
            return Err(format!(
                "bucket member count {count} != record count {}",
                records.len()
            ));
        }
        let prob_sum: f64 = self.buckets.iter().map(|b| b.prob).sum();
        if (prob_sum - 1.0).abs() > 1e-9 {
            return Err(format!("probabilities sum to {prob_sum}, not 1"));
        }
        for w in self.buckets.windows(2) {
            if w[0].rep > w[1].rep {
                return Err(format!(
                    "representatives not non-decreasing: {} > {}",
                    w[0].rep, w[1].rep
                ));
            }
        }
        for b in &self.buckets {
            if b.wmean > b.rep + 1e-9 {
                return Err(format!("bucket mean {} exceeds rep {}", b.wmean, b.rep));
            }
            if b.prob < 0.0 {
                return Err(format!("negative probability {}", b.prob));
            }
            if b.count == 0 {
                return Err("empty bucket".into());
            }
        }
        if let (Some(last), Some(max)) = (
            self.buckets.last(),
            records
                .iter()
                .map(|r| r.value)
                .fold(None, |m: Option<f64>, v| Some(m.map_or(v, |m| m.max(v)))),
        ) {
            if (last.rep - max).abs() > 1e-12 {
                return Err(format!(
                    "top representative {} != max record value {max}",
                    last.rep
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordList;

    fn records(values: &[f64]) -> RecordList {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64))
            .collect()
    }

    #[test]
    fn single_bucket_covers_everything() {
        let l = records(&[1.0, 2.0, 3.0]);
        let set = BucketSet::single(l.sorted());
        assert_eq!(set.len(), 1);
        let b = set.buckets()[0];
        assert_eq!(b.rep, 3.0);
        assert_eq!(b.prob, 1.0);
        assert_eq!(b.count, 3);
        set.check_invariants(l.sorted()).unwrap();
    }

    #[test]
    fn from_breaks_partitions_and_weights() {
        // Sorted values 1,2,3,4 with sigs 1,2,3,4. Break after index 1:
        // bucket A = {1,2} (sig 3), bucket B = {3,4} (sig 7).
        let mut l = RecordList::new();
        for (v, s) in [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0), (4.0, 4.0)] {
            l.observe(v, s);
        }
        l.commit();
        let set = BucketSet::from_breaks(l.sorted(), &[1]);
        assert_eq!(set.len(), 2);
        let a = set.buckets()[0];
        let b = set.buckets()[1];
        assert_eq!(a.rep, 2.0);
        assert_eq!(b.rep, 4.0);
        assert!((a.prob - 0.3).abs() < 1e-12);
        assert!((b.prob - 0.7).abs() < 1e-12);
        // weighted means: A = (1*1+2*2)/3 = 5/3; B = (3*3+4*4)/7 = 25/7
        assert!((a.wmean - 5.0 / 3.0).abs() < 1e-12);
        assert!((b.wmean - 25.0 / 7.0).abs() < 1e-12);
        set.check_invariants(l.sorted()).unwrap();
    }

    #[test]
    fn sample_respects_probability_mass() {
        let mut l = RecordList::new();
        for (v, s) in [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0), (4.0, 4.0)] {
            l.observe(v, s);
        }
        l.commit();
        let set = BucketSet::from_breaks(l.sorted(), &[1]); // probs 0.3 / 0.7
        assert_eq!(set.sample(0.0), Some(0));
        assert_eq!(set.sample(0.29), Some(0));
        assert_eq!(set.sample(0.31), Some(1));
        assert_eq!(set.sample(0.999), Some(1));
    }

    #[test]
    fn sample_above_filters_and_renormalizes() {
        let mut l = RecordList::new();
        for (v, s) in [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0), (4.0, 4.0)] {
            l.observe(v, s);
        }
        l.commit();
        let set = BucketSet::from_breaks(l.sorted(), &[0, 1]); // reps 1,2,4
                                                               // floor = 1.0 excludes only the first bucket.
        assert_eq!(set.sample_above(1.0, 0.0), Some(1));
        assert_eq!(set.sample_above(1.0, 0.99), Some(2));
        // floor = max rep: nothing above.
        assert_eq!(set.sample_above(4.0, 0.5), None);
        // floor below everything behaves like sample().
        assert_eq!(set.sample_above(0.0, 0.0), set.sample(0.0));
    }

    #[test]
    fn every_record_in_exactly_one_bucket() {
        let l = records(&[5.0, 1.0, 4.0, 2.0, 3.0, 6.0, 9.0, 7.0, 8.0, 10.0]);
        for breaks in [vec![], vec![4], vec![2, 6], vec![0, 1, 2, 3, 4, 5, 6, 7, 8]] {
            let set = BucketSet::from_breaks(l.sorted(), &breaks);
            assert_eq!(set.len(), breaks.len() + 1);
            set.check_invariants(l.sorted()).unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_increasing_breaks_rejected() {
        let l = records(&[1.0, 2.0, 3.0]);
        BucketSet::from_breaks(l.sorted(), &[1, 1]);
    }

    #[test]
    #[should_panic(expected = "empty record list")]
    fn empty_records_rejected() {
        BucketSet::from_breaks(&[], &[]);
    }

    #[test]
    fn max_rep_is_global_max() {
        let l = records(&[3.0, 1.0, 2.0]);
        let set = BucketSet::from_breaks(l.sorted(), &[0]);
        assert_eq!(set.max_rep(), Some(3.0));
    }

    #[test]
    fn singleton_buckets_have_rep_equal_mean() {
        let l = records(&[1.0, 2.0, 3.0]);
        let set = BucketSet::from_breaks(l.sorted(), &[0, 1]);
        for b in set.buckets() {
            assert_eq!(b.rep, b.wmean);
            assert_eq!(b.count, 1);
        }
    }
}
