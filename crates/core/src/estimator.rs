//! The per-resource estimator interface every allocation algorithm implements.
//!
//! §IV-D: the bucketing manager "maintains a separate instance of a resource
//! state" per (category, resource kind). A [`ValueEstimator`] is exactly one
//! such state: it ingests scalar observations and answers first-attempt and
//! retry allocation queries.
//!
//! Randomized algorithms (the bucketing family samples buckets by
//! probability) receive a uniform draw `u ∈ [0, 1)` from the caller instead
//! of an RNG handle; deterministic algorithms ignore it. This keeps every
//! estimator a pure state machine, which makes the property tests in this
//! crate straightforward.

/// One resource dimension's allocation estimator.
pub trait ValueEstimator: Send {
    /// Human-readable algorithm name (stable, used in reports).
    fn name(&self) -> &'static str;

    /// Ingest the peak consumption `value` of a completed task with
    /// significance `sig` (§IV-A step 6).
    fn observe(&mut self, value: f64, sig: f64);

    /// Number of observations ingested so far.
    fn len(&self) -> usize;

    /// Whether no observations have been ingested.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Predict the allocation for a task's *first* attempt.
    ///
    /// `u` is a uniform draw in `[0, 1)`. Returns `None` when the estimator
    /// has no basis for a prediction (no records yet) — the
    /// [`crate::allocator::Allocator`] then falls back to its exploratory
    /// policy.
    fn first(&mut self, u: f64) -> Option<f64>;

    /// Predict the allocation after an attempt with allocation `prev` was
    /// killed for exhausting this resource.
    ///
    /// Must return a value strictly greater than `prev` so retries always
    /// terminate (§II-B assumption 4: "retried with a bigger allocation").
    /// Returns `None` when the estimator has no records; the allocator then
    /// doubles `prev` itself.
    fn retry(&mut self, prev: f64, u: f64) -> Option<f64>;

    /// A snapshot of the current bucketing state, for observability.
    /// Estimators without a bucket structure return `None` (the default).
    fn snapshot(&mut self) -> Option<crate::bucket::BucketSet> {
        None
    }
}

/// Grow a failed allocation when no smarter information exists: double it,
/// with a floor of one unit so zero allocations still escalate (§IV-A: "the
/// allocator doubles the task's previous peak resource consumption until the
/// task succeeds").
pub fn double_allocation(prev: f64) -> f64 {
    if prev <= 0.0 {
        1.0
    } else {
        prev * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubling_escalates_and_handles_zero() {
        assert_eq!(double_allocation(0.0), 1.0);
        assert_eq!(double_allocation(-3.0), 1.0);
        assert_eq!(double_allocation(2.0), 4.0);
        let mut a = 0.0;
        for _ in 0..10 {
            let next = double_allocation(a);
            assert!(next > a);
            a = next;
        }
        assert_eq!(a, 512.0);
    }
}
