//! The per-resource estimator interface every allocation algorithm implements.
//!
//! §IV-D: the bucketing manager "maintains a separate instance of a resource
//! state" per (category, resource kind). A [`ValueEstimator`] is exactly one
//! such state: it ingests scalar observations and answers first-attempt and
//! retry allocation queries.
//!
//! Randomized algorithms (the bucketing family samples buckets by
//! probability) receive a uniform draw `u ∈ [0, 1)` from the caller instead
//! of an RNG handle; deterministic algorithms ignore it. This keeps every
//! estimator a pure state machine, which makes the property tests in this
//! crate straightforward.
//!
//! Every prediction is returned as a [`Prediction`]: the scalar value plus
//! an [`AllocSource`] describing how the estimator arrived at it. The
//! sources flow into the decision-tracing layer ([`crate::trace`]) so a
//! replayed workload can explain every allocation.

use crate::task::{TaskContext, TaskFeatures};
use serde::{Deserialize, Serialize};

/// How an estimator (or the allocator around it) arrived at one axis of an
/// allocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AllocSource {
    /// Sampled from the bucket with this index (bucketing family).
    Bucket {
        /// Index into the estimator's current [`crate::bucket::BucketSet`].
        idx: usize,
    },
    /// A deterministic point estimate (running max, quantile, Tovar's
    /// optimum, ...).
    Point,
    /// Geometric escalation past all known information.
    Doubling,
    /// The allocator's conservative exploratory probe (§V-A).
    Probe,
    /// The full machine capacity (whole-machine exploration, unmanaged
    /// axes, or the Whole Machine baseline).
    Capacity,
    /// A retry kept this axis's previous allocation (it was not exhausted).
    Held,
    /// A feature-conditioned sub-state with enough support answered
    /// ([`crate::featurebin::FeatureBinned`]).
    FeatureBin {
        /// Index of the feature bucket that answered.
        bin: usize,
    },
    /// A semi-bandit arm on the geometric allocation grid
    /// ([`crate::bandit::SemiBandit`]).
    Arm {
        /// Index of the chosen arm (0 = full capacity).
        idx: usize,
    },
}

/// One scalar prediction together with its provenance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// The predicted allocation value.
    pub value: f64,
    /// How the estimator chose it.
    pub source: AllocSource,
}

impl Prediction {
    /// A prediction from a bucket sample.
    pub fn bucket(value: f64, idx: usize) -> Self {
        Prediction {
            value,
            source: AllocSource::Bucket { idx },
        }
    }

    /// A deterministic point estimate.
    pub fn point(value: f64) -> Self {
        Prediction {
            value,
            source: AllocSource::Point,
        }
    }

    /// A doubling escalation.
    pub fn doubling(value: f64) -> Self {
        Prediction {
            value,
            source: AllocSource::Doubling,
        }
    }

    /// A full-capacity allocation.
    pub fn capacity(value: f64) -> Self {
        Prediction {
            value,
            source: AllocSource::Capacity,
        }
    }

    /// A feature-bin sub-state answer.
    pub fn feature_bin(value: f64, bin: usize) -> Self {
        Prediction {
            value,
            source: AllocSource::FeatureBin { bin },
        }
    }

    /// A semi-bandit arm selection.
    pub fn arm(value: f64, idx: usize) -> Self {
        Prediction {
            value,
            source: AllocSource::Arm { idx },
        }
    }
}

/// Summary of one bucketing-state recomputation, reported through
/// [`ValueEstimator::rebucket`] / [`ValueEstimator::take_rebucket`] and
/// traced as [`crate::trace::AllocEvent::Rebucket`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RebucketInfo {
    /// Monotone per-estimator recomputation counter (1 for the first
    /// rebucket).
    pub version: u64,
    /// Buckets in the new configuration.
    pub n_buckets: usize,
    /// Records the configuration was computed from.
    pub n_records: usize,
    /// Expected waste of the configuration under the §IV-C model
    /// ([`crate::cost::exhaustive_cost`]) — the objective value the
    /// partitioner optimized.
    pub cost: f64,
}

/// One resource dimension's allocation estimator.
pub trait ValueEstimator: Send {
    /// Human-readable algorithm name (stable, used in reports).
    fn name(&self) -> &'static str;

    /// Ingest the peak consumption `value` of a completed task with
    /// significance `sig` (§IV-A step 6).
    fn observe(&mut self, value: f64, sig: f64);

    /// Feature-aware ingestion: like [`ValueEstimator::observe`] but with
    /// the completed task's pre-run features attached. The default forwards
    /// to `observe`, so category-global algorithms stay bit-identical;
    /// feature-conditioned estimators override this to key sub-states.
    fn observe_ctx(&mut self, _features: &TaskFeatures, value: f64, sig: f64) {
        self.observe(value, sig);
    }

    /// Number of observations ingested so far.
    fn len(&self) -> usize;

    /// Whether no observations have been ingested.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Predict the allocation for a task's *first* attempt, with provenance.
    ///
    /// `ctx` carries the task's category, pre-run features and attempt
    /// history; category-global algorithms ignore it. `u` is a uniform draw
    /// in `[0, 1)`. Returns `None` when the estimator has no basis for a
    /// prediction (no records yet) — the [`crate::allocator::Allocator`]
    /// then falls back to its exploratory policy.
    fn predict_first(&mut self, ctx: &TaskContext, u: f64) -> Option<Prediction>;

    /// Predict the allocation after an attempt with allocation `prev` was
    /// killed for exhausting this resource, with provenance.
    ///
    /// Must return a value strictly greater than `prev` so retries always
    /// terminate (§II-B assumption 4: "retried with a bigger allocation").
    /// Returns `None` when the estimator has no records; the allocator then
    /// doubles `prev` itself.
    fn predict_retry(&mut self, ctx: &TaskContext, prev: f64, u: f64) -> Option<Prediction>;

    /// Value-only convenience over [`ValueEstimator::predict_first`], using
    /// a bare default-feature context.
    fn first(&mut self, u: f64) -> Option<f64> {
        let ctx = TaskContext::from(crate::task::CategoryId(0));
        self.predict_first(&ctx, u).map(|p| p.value)
    }

    /// Value-only convenience over [`ValueEstimator::predict_retry`], using
    /// a bare default-feature context.
    fn retry(&mut self, prev: f64, u: f64) -> Option<f64> {
        let ctx = TaskContext::from(crate::task::CategoryId(0));
        self.predict_retry(&ctx, prev, u).map(|p| p.value)
    }

    /// Force the bucketing state up to date *now* and describe it. `None`
    /// for estimators without a bucket structure (the default) or with no
    /// records yet.
    ///
    /// Estimators with lazy recomputation (the bucketing family) otherwise
    /// rebuild on the next prediction; this hook exists so observability
    /// layers can flush the state at a chosen point instead.
    fn rebucket(&mut self) -> Option<RebucketInfo> {
        None
    }

    /// A read-only view of the current bucketing state, for observability.
    /// Estimators without a bucket structure return `None` (the default).
    ///
    /// This never recomputes: after a burst of observations the view may be
    /// stale until the next prediction or an explicit
    /// [`ValueEstimator::rebucket`] call.
    fn snapshot(&self) -> Option<crate::bucket::BucketSet> {
        None
    }

    /// Drain the pending recomputation notice: `Some` exactly when the
    /// bucketing state was rebuilt since the last call (or since
    /// construction). The decision-tracing layer polls this after each
    /// prediction to emit [`crate::trace::AllocEvent::Rebucket`] events;
    /// estimators without a bucket structure keep the default `None`.
    fn take_rebucket(&mut self) -> Option<RebucketInfo> {
        None
    }
}

/// Grow a failed allocation when no smarter information exists: double it,
/// with a floor of one unit so zero allocations still escalate (§IV-A: "the
/// allocator doubles the task's previous peak resource consumption until the
/// task succeeds").
pub fn double_allocation(prev: f64) -> f64 {
    if prev <= 0.0 {
        1.0
    } else {
        prev * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubling_escalates_and_handles_zero() {
        assert_eq!(double_allocation(0.0), 1.0);
        assert_eq!(double_allocation(-3.0), 1.0);
        assert_eq!(double_allocation(2.0), 4.0);
        let mut a = 0.0;
        for _ in 0..10 {
            let next = double_allocation(a);
            assert!(next > a);
            a = next;
        }
        assert_eq!(a, 512.0);
    }

    #[test]
    fn value_conveniences_strip_provenance() {
        struct Fixed;
        impl ValueEstimator for Fixed {
            fn name(&self) -> &'static str {
                "fixed"
            }
            fn observe(&mut self, _value: f64, _sig: f64) {}
            fn len(&self) -> usize {
                1
            }
            fn predict_first(&mut self, _ctx: &TaskContext, _u: f64) -> Option<Prediction> {
                Some(Prediction::bucket(7.0, 2))
            }
            fn predict_retry(
                &mut self,
                _ctx: &TaskContext,
                prev: f64,
                _u: f64,
            ) -> Option<Prediction> {
                Some(Prediction::doubling(prev * 2.0))
            }
        }
        let mut est = Fixed;
        let ctx = TaskContext::from(crate::task::CategoryId(0));
        assert_eq!(est.first(0.0), Some(7.0));
        assert_eq!(est.retry(8.0, 0.0), Some(16.0));
        assert_eq!(
            est.predict_first(&ctx, 0.0).unwrap().source,
            AllocSource::Bucket { idx: 2 }
        );
        // Defaults: no bucket structure, nothing pending.
        assert!(est.rebucket().is_none());
        assert!(est.snapshot().is_none());
        assert!(est.take_rebucket().is_none());
    }

    #[test]
    fn prediction_constructors_tag_sources() {
        assert_eq!(Prediction::point(3.0).source, AllocSource::Point);
        assert_eq!(Prediction::capacity(64.0).source, AllocSource::Capacity);
        assert_eq!(Prediction::doubling(2.0).source, AllocSource::Doubling);
        assert_eq!(
            Prediction::feature_bin(5.0, 3).source,
            AllocSource::FeatureBin { bin: 3 }
        );
        assert_eq!(Prediction::arm(9.0, 1).source, AllocSource::Arm { idx: 1 });
    }
}
