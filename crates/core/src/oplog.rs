//! A replayable journal of allocator inputs.
//!
//! Allocator state cannot be serialized directly: estimators are
//! `Box<dyn ValueEstimator>` trait objects with internal pending buffers and
//! lazy rebucket counters, and each shard holds a `StdRng` mid-stream. What
//! *can* be captured exactly is the input sequence — every observation,
//! prediction and rebucket sweep the allocator has been asked for. Because
//! the allocator is deterministic in `(algorithm, config, seed, input
//! sequence)`, replaying an [`AllocLog`] through a freshly built allocator
//! reproduces the original byte for byte: same estimator contents, same
//! rebucket versions, same RNG positions, same feedback window.
//!
//! This is the snapshot format `tora serve` persists per tenant: an op log
//! plus the builder inputs is a complete, restartable description of a
//! tenant's allocator, regardless of which estimator algorithm backs it.
//!
//! Predictions are journaled too — not for their answers (those are
//! recomputed) but because steady-state predictions consume RNG draws, and
//! a replay that skipped them would leave the RNG stream in the wrong
//! position for every draw that follows.

use crate::allocator::Allocator;
use crate::feedback::AttemptFeedback;
use crate::resources::{ResourceMask, ResourceVector};
use crate::task::{CategoryId, ResourceRecord, TaskContext};
use crate::trace::EventSink;
use serde::{Deserialize, Serialize};

/// One allocator input: everything that can move allocator state.
///
/// The variants mirror the mutating half of the [`Allocator`] API. Read-only
/// calls (`snapshot`, `records_for`, …) are not journaled — they cannot
/// change what a later call returns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AllocOp {
    /// [`Allocator::observe`] — a completed task's resource record.
    Observe {
        /// The record as it was ingested.
        record: ResourceRecord,
    },
    /// [`Allocator::predict_first_batch`] — a batch of first-attempt
    /// predictions in request order. A single serial
    /// [`Allocator::predict_first`] is a batch of one; journaling the batch
    /// shape (rather than flattening) keeps the log a faithful transcript
    /// while producing the identical draw sequence either way.
    PredictFirstBatch {
        /// Requested task contexts, in request order. The feature vectors
        /// matter: a feature-conditioned estimator answers differently per
        /// context, so a replay must present the same ones. A bare-category
        /// request journals as a context with default features.
        contexts: Vec<TaskContext>,
    },
    /// [`Allocator::predict_retry`] — a retry after a kill.
    PredictRetry {
        /// The killed task's context.
        context: TaskContext,
        /// The allocation the previous attempt ran under.
        prev: ResourceVector,
        /// The dimensions that attempt exhausted.
        exhausted: ResourceMask,
    },
    /// [`Allocator::observe_outcome`] — fault-feedback telemetry.
    ObserveOutcome {
        /// The category the outcome belongs to.
        category: CategoryId,
        /// The attempt outcome.
        outcome: AttemptFeedback,
        /// The rack the attempt ran on, when known (feeds rack avoidance).
        #[serde(default)]
        rack: Option<u32>,
    },
    /// [`Allocator::rebucket_all`] — a full rebucket sweep.
    RebucketAll,
}

/// An append-only journal of [`AllocOp`]s, replayable onto a freshly built
/// allocator to reproduce the recorded state exactly.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AllocLog {
    /// The journaled operations, oldest first.
    pub ops: Vec<AllocOp>,
}

impl AllocLog {
    /// An empty journal.
    pub fn new() -> Self {
        AllocLog::default()
    }

    /// Append one operation.
    pub fn push(&mut self, op: AllocOp) {
        self.ops.push(op);
    }

    /// Number of journaled operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the journal is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Apply every journaled operation to `allocator`, in order.
    ///
    /// `allocator` must be freshly built with the same algorithm, config and
    /// seed as the journaled one — replay makes no attempt to verify this.
    /// `threads` only changes how batched ops are scheduled; the resulting
    /// state is byte-identical at any value (the sharded paths' determinism
    /// guarantee). Prediction results are recomputed and discarded — the
    /// point of replaying them is their RNG consumption, not their answers.
    pub fn replay<S: EventSink>(&self, allocator: &mut Allocator<S>, threads: usize) {
        for op in &self.ops {
            match op {
                AllocOp::Observe { record } => {
                    allocator.observe(record);
                }
                AllocOp::PredictFirstBatch { contexts } => {
                    allocator.predict_first_batch(contexts, threads);
                }
                AllocOp::PredictRetry {
                    context,
                    prev,
                    exhausted,
                } => {
                    allocator.predict_retry(*context, prev, exhausted);
                }
                AllocOp::ObserveOutcome {
                    category,
                    outcome,
                    rack,
                } => {
                    allocator.observe_outcome(*category, *outcome, *rack);
                }
                AllocOp::RebucketAll => {
                    allocator.rebucket_all(threads);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::{AlgorithmKind, Allocator};
    use crate::task::TaskSpec;

    fn record(id: u64, category: u32, cores: f64) -> ResourceRecord {
        let peak = ResourceVector::new(cores, 100.0 * cores, 10.0 * cores);
        ResourceRecord::from_task(&TaskSpec::new(id, category, peak, 5.0))
    }

    /// Drive an allocator while journaling, replay the journal onto a fresh
    /// allocator, and check both answer identically afterwards — including
    /// draws, which only match if the RNG positions match.
    #[test]
    fn replay_reproduces_state_byte_identically() {
        for threads in [1usize, 4] {
            let mut log = AllocLog::new();
            let mut live = Allocator::new(AlgorithmKind::GreedyBucketing, 7);
            for i in 0..30u64 {
                let r = record(i, (i % 3) as u32, 1.0 + (i % 5) as f64);
                log.push(AllocOp::Observe { record: r });
                live.observe(&r);
            }
            let batch: Vec<TaskContext> = (0..6)
                .map(|i| TaskContext::from(CategoryId(i % 3)))
                .collect();
            log.push(AllocOp::PredictFirstBatch {
                contexts: batch.clone(),
            });
            live.predict_first_batch(&batch, 1);
            log.push(AllocOp::RebucketAll);
            live.rebucket_all(1);
            let prev = ResourceVector::new(1.0, 100.0, 10.0);
            let exhausted = ResourceMask::only(crate::resources::ResourceKind::MemoryMb);
            let retry_ctx = TaskContext::from(CategoryId(1));
            log.push(AllocOp::PredictRetry {
                context: retry_ctx,
                prev,
                exhausted,
            });
            live.predict_retry(retry_ctx, &prev, &exhausted);
            log.push(AllocOp::ObserveOutcome {
                category: CategoryId(0),
                outcome: AttemptFeedback::Crash,
                rack: Some(2),
            });
            live.observe_outcome(CategoryId(0), AttemptFeedback::Crash, Some(2));

            let mut restored = Allocator::new(AlgorithmKind::GreedyBucketing, 7);
            log.replay(&mut restored, threads);

            // Identical state ⇒ identical future behavior: compare the next
            // predictions (draw-consuming) and a rebucket sweep.
            let probe: Vec<CategoryId> = (0..9).map(|i| CategoryId(i % 3)).collect();
            let a = live.predict_first_batch(&probe, 1);
            let b = restored.predict_first_batch(&probe, 1);
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "threads={threads}: predictions diverged after replay"
            );
            assert_eq!(
                format!("{:?}", live.rebucket_all(1)),
                format!("{:?}", restored.rebucket_all(1)),
                "threads={threads}: rebucket state diverged after replay"
            );
            assert_eq!(live.windowed_fault_rate(), restored.windowed_fault_rate());
        }
    }

    #[test]
    fn log_round_trips_through_json() {
        let mut log = AllocLog::new();
        log.push(AllocOp::Observe {
            record: record(3, 1, 2.0),
        });
        log.push(AllocOp::PredictFirstBatch {
            contexts: vec![
                TaskContext::from(CategoryId(0)),
                TaskContext::new(
                    CategoryId(1),
                    crate::task::TaskFeatures::with_input_signal(0.75).at_depth(3),
                ),
            ],
        });
        log.push(AllocOp::PredictRetry {
            context: TaskContext::from(CategoryId(0)),
            prev: ResourceVector::new(1.0, 100.0, 10.0),
            exhausted: ResourceMask::only(crate::resources::ResourceKind::Cores),
        });
        log.push(AllocOp::ObserveOutcome {
            category: CategoryId(2),
            outcome: AttemptFeedback::Straggler,
            rack: None,
        });
        log.push(AllocOp::RebucketAll);
        let json = serde_json::to_string(&log).unwrap();
        let back: AllocLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back, log);
    }

    /// Outcome ops journaled before rack attribution existed still parse.
    #[test]
    fn outcome_without_rack_field_still_parses() {
        let json = r#"{"ops":[{"ObserveOutcome":{"category":1,"outcome":"Crash"}}]}"#;
        let log: AllocLog = serde_json::from_str(json).unwrap();
        assert_eq!(
            log.ops,
            vec![AllocOp::ObserveOutcome {
                category: CategoryId(1),
                outcome: AttemptFeedback::Crash,
                rack: None,
            }]
        );
    }
}
