//! A replayable journal of allocator inputs.
//!
//! Allocator state cannot be serialized directly: estimators are
//! `Box<dyn ValueEstimator>` trait objects with internal pending buffers and
//! lazy rebucket counters, and each shard holds a `StdRng` mid-stream. What
//! *can* be captured exactly is the input sequence — every observation,
//! prediction and rebucket sweep the allocator has been asked for. Because
//! the allocator is deterministic in `(algorithm, config, seed, input
//! sequence)`, replaying an [`AllocLog`] through a freshly built allocator
//! reproduces the original byte for byte: same estimator contents, same
//! rebucket versions, same RNG positions, same feedback window.
//!
//! This is the snapshot format `tora serve` persists per tenant: an op log
//! plus the builder inputs is a complete, restartable description of a
//! tenant's allocator, regardless of which estimator algorithm backs it.
//!
//! Predictions are journaled too — not for their answers (those are
//! recomputed) but because steady-state predictions consume RNG draws, and
//! a replay that skipped them would leave the RNG stream in the wrong
//! position for every draw that follows.

use crate::allocator::Allocator;
use crate::feedback::AttemptFeedback;
use crate::resources::{ResourceMask, ResourceVector};
use crate::task::{CategoryId, ResourceRecord};
use crate::trace::EventSink;
use serde::{Deserialize, Serialize};

/// One allocator input: everything that can move allocator state.
///
/// The variants mirror the mutating half of the [`Allocator`] API. Read-only
/// calls (`snapshot`, `records_for`, …) are not journaled — they cannot
/// change what a later call returns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AllocOp {
    /// [`Allocator::observe`] — a completed task's resource record.
    Observe {
        /// The record as it was ingested.
        record: ResourceRecord,
    },
    /// [`Allocator::predict_first_batch`] — a batch of first-attempt
    /// predictions in request order. A single serial
    /// [`Allocator::predict_first`] is a batch of one; journaling the batch
    /// shape (rather than flattening) keeps the log a faithful transcript
    /// while producing the identical draw sequence either way.
    PredictFirstBatch {
        /// Requested categories, in request order.
        categories: Vec<CategoryId>,
    },
    /// [`Allocator::predict_retry`] — a retry after a kill.
    PredictRetry {
        /// The category of the killed task.
        category: CategoryId,
        /// The allocation the previous attempt ran under.
        prev: ResourceVector,
        /// The dimensions that attempt exhausted.
        exhausted: ResourceMask,
    },
    /// [`Allocator::observe_outcome`] — fault-feedback telemetry.
    ObserveOutcome {
        /// The category the outcome belongs to.
        category: CategoryId,
        /// The attempt outcome.
        outcome: AttemptFeedback,
    },
    /// [`Allocator::rebucket_all`] — a full rebucket sweep.
    RebucketAll,
}

/// An append-only journal of [`AllocOp`]s, replayable onto a freshly built
/// allocator to reproduce the recorded state exactly.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AllocLog {
    /// The journaled operations, oldest first.
    pub ops: Vec<AllocOp>,
}

impl AllocLog {
    /// An empty journal.
    pub fn new() -> Self {
        AllocLog::default()
    }

    /// Append one operation.
    pub fn push(&mut self, op: AllocOp) {
        self.ops.push(op);
    }

    /// Number of journaled operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the journal is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Apply every journaled operation to `allocator`, in order.
    ///
    /// `allocator` must be freshly built with the same algorithm, config and
    /// seed as the journaled one — replay makes no attempt to verify this.
    /// `threads` only changes how batched ops are scheduled; the resulting
    /// state is byte-identical at any value (the sharded paths' determinism
    /// guarantee). Prediction results are recomputed and discarded — the
    /// point of replaying them is their RNG consumption, not their answers.
    pub fn replay<S: EventSink>(&self, allocator: &mut Allocator<S>, threads: usize) {
        for op in &self.ops {
            match op {
                AllocOp::Observe { record } => {
                    allocator.observe(record);
                }
                AllocOp::PredictFirstBatch { categories } => {
                    allocator.predict_first_batch(categories, threads);
                }
                AllocOp::PredictRetry {
                    category,
                    prev,
                    exhausted,
                } => {
                    allocator.predict_retry(*category, prev, exhausted);
                }
                AllocOp::ObserveOutcome { category, outcome } => {
                    allocator.observe_outcome(*category, *outcome);
                }
                AllocOp::RebucketAll => {
                    allocator.rebucket_all(threads);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::{AlgorithmKind, Allocator};
    use crate::task::TaskSpec;

    fn record(id: u64, category: u32, cores: f64) -> ResourceRecord {
        let peak = ResourceVector::new(cores, 100.0 * cores, 10.0 * cores);
        ResourceRecord::from_task(&TaskSpec::new(id, category, peak, 5.0))
    }

    /// Drive an allocator while journaling, replay the journal onto a fresh
    /// allocator, and check both answer identically afterwards — including
    /// draws, which only match if the RNG positions match.
    #[test]
    fn replay_reproduces_state_byte_identically() {
        for threads in [1usize, 4] {
            let mut log = AllocLog::new();
            let mut live = Allocator::new(AlgorithmKind::GreedyBucketing, 7);
            for i in 0..30u64 {
                let r = record(i, (i % 3) as u32, 1.0 + (i % 5) as f64);
                log.push(AllocOp::Observe { record: r });
                live.observe(&r);
            }
            let batch: Vec<CategoryId> = (0..6).map(|i| CategoryId(i % 3)).collect();
            log.push(AllocOp::PredictFirstBatch {
                categories: batch.clone(),
            });
            live.predict_first_batch(&batch, 1);
            log.push(AllocOp::RebucketAll);
            live.rebucket_all(1);
            let prev = ResourceVector::new(1.0, 100.0, 10.0);
            let exhausted = ResourceMask::only(crate::resources::ResourceKind::MemoryMb);
            log.push(AllocOp::PredictRetry {
                category: CategoryId(1),
                prev,
                exhausted,
            });
            live.predict_retry(CategoryId(1), &prev, &exhausted);
            log.push(AllocOp::ObserveOutcome {
                category: CategoryId(0),
                outcome: AttemptFeedback::Crash,
            });
            live.observe_outcome(CategoryId(0), AttemptFeedback::Crash);

            let mut restored = Allocator::new(AlgorithmKind::GreedyBucketing, 7);
            log.replay(&mut restored, threads);

            // Identical state ⇒ identical future behavior: compare the next
            // predictions (draw-consuming) and a rebucket sweep.
            let probe: Vec<CategoryId> = (0..9).map(|i| CategoryId(i % 3)).collect();
            let a = live.predict_first_batch(&probe, 1);
            let b = restored.predict_first_batch(&probe, 1);
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "threads={threads}: predictions diverged after replay"
            );
            assert_eq!(
                format!("{:?}", live.rebucket_all(1)),
                format!("{:?}", restored.rebucket_all(1)),
                "threads={threads}: rebucket state diverged after replay"
            );
            assert_eq!(live.windowed_fault_rate(), restored.windowed_fault_rate());
        }
    }

    #[test]
    fn log_round_trips_through_json() {
        let mut log = AllocLog::new();
        log.push(AllocOp::Observe {
            record: record(3, 1, 2.0),
        });
        log.push(AllocOp::PredictFirstBatch {
            categories: vec![CategoryId(0), CategoryId(1)],
        });
        log.push(AllocOp::PredictRetry {
            category: CategoryId(0),
            prev: ResourceVector::new(1.0, 100.0, 10.0),
            exhausted: ResourceMask::only(crate::resources::ResourceKind::Cores),
        });
        log.push(AllocOp::ObserveOutcome {
            category: CategoryId(2),
            outcome: AttemptFeedback::Straggler,
        });
        log.push(AllocOp::RebucketAll);
        let json = serde_json::to_string(&log).unwrap();
        let back: AllocLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back, log);
    }
}
