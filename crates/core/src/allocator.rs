//! The adaptive resource allocator (§IV-D).
//!
//! An [`Allocator`] owns one estimator per *(task category, resource kind)*
//! pair — "an allocator treats each category of tasks independently and uses
//! a separate instance of a bucketing manager per category. Within each
//! category, the bucketing manager maintains a separate instance of a
//! resource state" — and implements the exploratory mode of §V-A:
//!
//! * the bucketing algorithms allocate a conservative (1 core, 1 GB memory,
//!   1 GB disk) probe until 10 records exist, doubling exhausted dimensions
//!   on failure;
//! * the comparator algorithms "allocate a whole machine instead, trading an
//!   expensive exploratory cost with a guarantee of successful task
//!   execution" (§V-C).
//!
//! All allocations are clamped to the worker capacity: nothing larger could
//! be scheduled.
//!
//! ## Construction
//!
//! [`Allocator::builder`] is the primary construction path:
//!
//! ```
//! use tora_alloc::allocator::{AlgorithmKind, Allocator};
//!
//! let allocator = Allocator::builder(AlgorithmKind::GreedyBucketing)
//!     .seed(42)
//!     .exploratory_records(5)
//!     .build();
//! assert_eq!(allocator.label(), "greedy-bucketing");
//! ```
//!
//! ## Decision tracing
//!
//! The allocator is generic over an [`EventSink`]; the default [`NoopSink`]
//! compiles tracing out entirely. Every prediction also returns an
//! [`AllocationDecision`] carrying per-axis provenance, so callers can see
//! *why* an allocation has the shape it has without installing a sink.

use crate::baselines::{MaxSeen, QuantizedBucketing, Tovar, WholeMachine};
use crate::estimator::{double_allocation, AllocSource, RebucketInfo, ValueEstimator};
use crate::exhaustive::ExhaustiveBucketing;
use crate::feedback::{AttemptFeedback, FaultPolicy, FeedbackWindow};
use crate::greedy::GreedyBucketing;
use crate::kmeans::KMeansBucketing;
use crate::policy::BucketingEstimator;
use crate::resources::{ResourceKind, ResourceMask, ResourceVector, WorkerSpec};
use crate::task::{CategoryId, ResourceRecord};
use crate::trace::{AllocEvent, AxisProvenance, EventSink, NoopSink, PredictKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::ops::Deref;

/// The seven allocation algorithms evaluated in §V, plus the incremental
/// Greedy Bucketing ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlgorithmKind {
    /// Naive baseline: a full worker per task.
    WholeMachine,
    /// Histogram-rounded running maximum.
    MaxSeen,
    /// Tovar et al. job sizing, minimum-waste objective.
    MinWaste,
    /// Tovar et al. job sizing, maximum-throughput objective.
    MaxThroughput,
    /// Phung et al. quantile bucketing (median split).
    QuantizedBucketing,
    /// This paper: Greedy Bucketing (Algorithm 1).
    GreedyBucketing,
    /// This paper: Exhaustive Bucketing (Algorithm 2).
    ExhaustiveBucketing,
    /// Ablation: Greedy Bucketing with the one-pass scan (identical output,
    /// different compute cost). Not part of the paper's evaluated set.
    GreedyBucketingIncremental,
    /// Extension: k-means clustering behind the shared bucketing policy —
    /// the other clustering rule of Phung et al. \[11\]. Not part of the
    /// paper's evaluated set.
    KMeansBucketing,
}

impl AlgorithmKind {
    /// The seven algorithms of Figures 5 and 6, in the paper's order.
    pub const PAPER_SET: [AlgorithmKind; 7] = [
        AlgorithmKind::WholeMachine,
        AlgorithmKind::MaxSeen,
        AlgorithmKind::MinWaste,
        AlgorithmKind::MaxThroughput,
        AlgorithmKind::QuantizedBucketing,
        AlgorithmKind::GreedyBucketing,
        AlgorithmKind::ExhaustiveBucketing,
    ];

    /// Stable report label.
    pub fn label(self) -> &'static str {
        match self {
            AlgorithmKind::WholeMachine => "whole-machine",
            AlgorithmKind::MaxSeen => "max-seen",
            AlgorithmKind::MinWaste => "min-waste",
            AlgorithmKind::MaxThroughput => "max-throughput",
            AlgorithmKind::QuantizedBucketing => "quantized-bucketing",
            AlgorithmKind::GreedyBucketing => "greedy-bucketing",
            AlgorithmKind::ExhaustiveBucketing => "exhaustive-bucketing",
            AlgorithmKind::GreedyBucketingIncremental => "greedy-bucketing-incremental",
            AlgorithmKind::KMeansBucketing => "kmeans-bucketing",
        }
    }

    /// Whether this is one of the paper's two novel bucketing algorithms
    /// (they use the conservative exploratory mode; comparators use the
    /// whole-machine exploratory mode, §V-C).
    pub fn is_novel_bucketing(self) -> bool {
        matches!(
            self,
            AlgorithmKind::GreedyBucketing
                | AlgorithmKind::ExhaustiveBucketing
                | AlgorithmKind::GreedyBucketingIncremental
                | AlgorithmKind::KMeansBucketing
        )
    }

    /// The output-identical but computationally cheaper variant, if one
    /// exists. Since the prefix-sum kernels became the default partitioner
    /// mode, every kind already *is* its fast equivalent, so this is the
    /// identity; it is kept so experiment harnesses read the same either
    /// way. Table I opts into the paper-faithful scans explicitly
    /// (`GreedyBucketing::faithful()` / `ExhaustiveBucketing::faithful()`)
    /// because their compute cost is what that table reports.
    pub fn fast_equivalent(self) -> AlgorithmKind {
        self
    }

    /// Construct the estimator for one resource dimension of one category.
    pub fn build_estimator(
        self,
        kind: ResourceKind,
        machine: &WorkerSpec,
    ) -> Box<dyn ValueEstimator> {
        let capacity = machine.capacity[kind];
        match self {
            AlgorithmKind::WholeMachine => Box::new(WholeMachine::new(capacity)),
            AlgorithmKind::MaxSeen => {
                let granularity = match kind {
                    ResourceKind::Cores | ResourceKind::Gpus => MaxSeen::CORES_GRANULARITY,
                    ResourceKind::MemoryMb | ResourceKind::DiskMb => {
                        MaxSeen::MEMORY_DISK_GRANULARITY
                    }
                    // Time limits round to the minute.
                    ResourceKind::TimeS => 60.0,
                };
                Box::new(MaxSeen::new(granularity))
            }
            AlgorithmKind::MinWaste => Box::new(Tovar::min_waste(capacity)),
            AlgorithmKind::MaxThroughput => Box::new(Tovar::max_throughput(capacity)),
            AlgorithmKind::QuantizedBucketing => Box::new(QuantizedBucketing::new()),
            AlgorithmKind::GreedyBucketing => {
                Box::new(BucketingEstimator::new(GreedyBucketing::new()))
            }
            AlgorithmKind::GreedyBucketingIncremental => {
                Box::new(BucketingEstimator::new(GreedyBucketing::incremental()))
            }
            AlgorithmKind::ExhaustiveBucketing => {
                Box::new(BucketingEstimator::new(ExhaustiveBucketing::new()))
            }
            AlgorithmKind::KMeansBucketing => {
                Box::new(BucketingEstimator::new(KMeansBucketing::new()))
            }
        }
    }
}

impl fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How a category is allocated before enough records exist.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ExploratoryPolicy {
    /// §V-A: allocate a small fixed probe (1 core, 1 GB memory, 1 GB disk in
    /// the paper), doubling exhausted dimensions on failure.
    Conservative {
        /// The probe allocation.
        probe: ResourceVector,
    },
    /// §V-C: allocate a whole worker until enough records exist.
    WholeMachine,
}

impl ExploratoryPolicy {
    /// The paper's conservative probe: 1 core, 1 GB memory, 1 GB disk.
    pub fn paper_conservative() -> Self {
        ExploratoryPolicy::Conservative {
            probe: ResourceVector::new(1.0, 1024.0, 1024.0),
        }
    }
}

/// Allocator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AllocatorConfig {
    /// Worker shape allocations are clamped to.
    pub machine: WorkerSpec,
    /// Resource kinds under management (default: cores, memory, disk).
    pub managed: Vec<ResourceKind>,
    /// Records required per category before leaving exploratory mode
    /// (10 in §V-A).
    pub exploratory_records: usize,
    /// Exploratory behaviour; `None` selects the paper's per-algorithm
    /// default (conservative for bucketing, whole machine for comparators).
    pub exploratory: Option<ExploratoryPolicy>,
    /// Ablation switch: feed every estimator a significance of 1 instead of
    /// the task id, disabling the §IV-A recency weighting.
    pub uniform_significance: bool,
}

impl Default for AllocatorConfig {
    fn default() -> Self {
        AllocatorConfig {
            machine: WorkerSpec::paper_default(),
            managed: ResourceKind::STANDARD.to_vec(),
            exploratory_records: 10,
            exploratory: None,
            uniform_significance: false,
        }
    }
}

/// Builds one estimator per (resource kind, worker shape); lets ablation
/// harnesses run non-default algorithm variants (e.g. Exhaustive Bucketing
/// with a different bucket cap) through the full allocator machinery.
pub type EstimatorFactory =
    Box<dyn Fn(ResourceKind, &WorkerSpec) -> Box<dyn ValueEstimator> + Send>;

/// A predicted allocation together with how it was derived.
///
/// Dereferences to the underlying [`ResourceVector`], so existing callers
/// that only want the allocation keep working unchanged:
///
/// ```
/// use tora_alloc::allocator::{AlgorithmKind, Allocator};
/// use tora_alloc::task::CategoryId;
///
/// let mut a = Allocator::new(AlgorithmKind::GreedyBucketing, 1);
/// let decision = a.predict_first(CategoryId(0));
/// assert_eq!(decision.memory_mb(), 1024.0); // deref to ResourceVector
/// assert_eq!(decision.kind, tora_alloc::trace::PredictKind::Explore);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocationDecision {
    /// The allocation to reserve (clamped to worker capacity).
    pub alloc: ResourceVector,
    /// Which prediction path produced it.
    pub kind: PredictKind,
    /// Per-axis derivation, in managed-axis order. Empty for exploratory
    /// predictions (every managed axis is the probe).
    pub provenance: Vec<AxisProvenance>,
    /// True when the attempt exhausted some dimension but no exhausted axis
    /// could be raised above its previous allocation (everything was already
    /// at machine capacity). Retrying such a decision reproduces the same
    /// kill: the task does not fit the machine and must be dead-lettered,
    /// not retried forever.
    #[serde(default)]
    pub infeasible: bool,
}

impl AllocationDecision {
    /// The provenance entry for one axis, if the axis is managed.
    pub fn axis(&self, kind: ResourceKind) -> Option<&AxisProvenance> {
        self.provenance.iter().find(|p| p.resource == kind)
    }

    /// Discard the provenance, keeping the allocation.
    pub fn into_alloc(self) -> ResourceVector {
        self.alloc
    }
}

impl Deref for AllocationDecision {
    type Target = ResourceVector;
    fn deref(&self) -> &ResourceVector {
        &self.alloc
    }
}

impl PartialEq<ResourceVector> for AllocationDecision {
    fn eq(&self, other: &ResourceVector) -> bool {
        self.alloc == *other
    }
}

impl From<AllocationDecision> for ResourceVector {
    fn from(d: AllocationDecision) -> ResourceVector {
        d.alloc
    }
}

impl fmt::Display for AllocationDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.kind, self.alloc)
    }
}

/// Per-category estimator bank.
struct CategoryState {
    estimators: Vec<(ResourceKind, Box<dyn ValueEstimator>)>,
    records: usize,
}

/// Staged construction of an [`Allocator`].
///
/// Obtained from [`Allocator::builder`]; finish with [`build`] for an
/// untraced allocator or [`sink`] to attach an [`EventSink`].
///
/// [`build`]: AllocatorBuilder::build
/// [`sink`]: AllocatorBuilder::sink
#[derive(Debug, Clone)]
pub struct AllocatorBuilder {
    algorithm: AlgorithmKind,
    config: AllocatorConfig,
    seed: u64,
    fault_policy: Option<FaultPolicy>,
}

impl AllocatorBuilder {
    /// RNG seed for bucket sampling (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Worker shape allocations are clamped to.
    pub fn machine(mut self, machine: WorkerSpec) -> Self {
        self.config.machine = machine;
        self
    }

    /// Resource kinds under management.
    pub fn managed(mut self, managed: impl Into<Vec<ResourceKind>>) -> Self {
        self.config.managed = managed.into();
        self
    }

    /// Records required per category before leaving exploratory mode.
    pub fn exploratory_records(mut self, n: usize) -> Self {
        self.config.exploratory_records = n;
        self
    }

    /// Exploratory policy override (the default follows the algorithm).
    pub fn exploratory(mut self, policy: ExploratoryPolicy) -> Self {
        self.config.exploratory = Some(policy);
        self
    }

    /// Disable the §IV-A recency weighting (ablation).
    pub fn uniform_significance(mut self, on: bool) -> Self {
        self.config.uniform_significance = on;
        self
    }

    /// Replace the whole configuration at once.
    pub fn config(mut self, config: AllocatorConfig) -> Self {
        self.config = config;
        self
    }

    /// Enable the fault-feedback policy (absent by default).
    pub fn fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.fault_policy = Some(policy);
        self
    }

    /// Build an untraced allocator.
    pub fn build(self) -> Allocator {
        let mut allocator = Allocator::with_config(self.algorithm, self.config, self.seed);
        allocator.set_fault_policy(self.fault_policy);
        allocator
    }

    /// Build a traced allocator emitting [`AllocEvent`]s into `sink`.
    pub fn sink<S: EventSink>(self, sink: S) -> Allocator<S> {
        self.build().with_sink(sink)
    }
}

/// The adaptive allocator: the §IV-D `Allocator` pseudocode, concretely.
///
/// Generic over an [`EventSink`]; the default [`NoopSink`] disables decision
/// tracing at compile time.
pub struct Allocator<S: EventSink = NoopSink> {
    label: String,
    algorithm: Option<AlgorithmKind>,
    factory: EstimatorFactory,
    config: AllocatorConfig,
    exploratory: ExploratoryPolicy,
    categories: HashMap<CategoryId, CategoryState>,
    rng: StdRng,
    rejected: u64,
    fault_policy: Option<FaultPolicy>,
    feedback: FeedbackWindow,
    sink: S,
}

impl Allocator {
    /// Start building an allocator for `algorithm`.
    pub fn builder(algorithm: AlgorithmKind) -> AllocatorBuilder {
        AllocatorBuilder {
            algorithm,
            config: AllocatorConfig::default(),
            seed: 0,
            fault_policy: None,
        }
    }

    /// Build an allocator for `algorithm` with the paper's defaults and a
    /// deterministic seed. Shorthand for
    /// `Allocator::builder(algorithm).seed(seed).build()`.
    pub fn new(algorithm: AlgorithmKind, seed: u64) -> Self {
        Self::with_config(algorithm, AllocatorConfig::default(), seed)
    }

    /// Build with an explicit configuration.
    pub fn with_config(algorithm: AlgorithmKind, config: AllocatorConfig, seed: u64) -> Self {
        let exploratory = config
            .exploratory
            .unwrap_or(if algorithm.is_novel_bucketing() {
                ExploratoryPolicy::paper_conservative()
            } else {
                ExploratoryPolicy::WholeMachine
            });
        Allocator {
            label: algorithm.label().to_string(),
            algorithm: Some(algorithm),
            factory: Box::new(move |kind, machine| algorithm.build_estimator(kind, machine)),
            config,
            exploratory,
            categories: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
            rejected: 0,
            fault_policy: None,
            feedback: FeedbackWindow::new(FaultPolicy::default().window),
            sink: NoopSink,
        }
    }

    /// Build around a custom estimator factory — the escape hatch for
    /// algorithm variants without an [`AlgorithmKind`] (ablations).
    /// `config.exploratory` must be set (there is no per-algorithm default
    /// to fall back to).
    pub fn with_factory(
        label: impl Into<String>,
        factory: EstimatorFactory,
        config: AllocatorConfig,
        seed: u64,
    ) -> Self {
        let exploratory = config
            .exploratory
            .expect("with_factory requires an explicit exploratory policy");
        Allocator {
            label: label.into(),
            algorithm: None,
            factory,
            config,
            exploratory,
            categories: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
            rejected: 0,
            fault_policy: None,
            feedback: FeedbackWindow::new(FaultPolicy::default().window),
            sink: NoopSink,
        }
    }

    /// Attach an [`EventSink`], turning this untraced allocator into a
    /// traced one. All estimator state and the RNG position carry over.
    pub fn with_sink<S: EventSink>(self, sink: S) -> Allocator<S> {
        Allocator {
            label: self.label,
            algorithm: self.algorithm,
            factory: self.factory,
            config: self.config,
            exploratory: self.exploratory,
            categories: self.categories,
            rng: self.rng,
            rejected: self.rejected,
            fault_policy: self.fault_policy,
            feedback: self.feedback,
            sink,
        }
    }
}

impl<S: EventSink> Allocator<S> {
    /// The algorithm driving this allocator (`None` for factory-built
    /// variants).
    pub fn algorithm(&self) -> Option<AlgorithmKind> {
        self.algorithm
    }

    /// Report label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The active configuration.
    pub fn config(&self) -> &AllocatorConfig {
        &self.config
    }

    /// The exploratory policy in effect.
    pub fn exploratory_policy(&self) -> ExploratoryPolicy {
        self.exploratory
    }

    /// Records observed for `category`.
    pub fn records_for(&self, category: CategoryId) -> usize {
        self.categories.get(&category).map_or(0, |s| s.records)
    }

    /// The active fault-feedback policy, if one is set.
    pub fn fault_policy(&self) -> Option<FaultPolicy> {
        self.fault_policy
    }

    /// Install (or remove, with `None`) the fault-feedback policy. Resets
    /// the outcome window to the policy's capacity, so call before the run
    /// starts.
    pub fn set_fault_policy(&mut self, policy: Option<FaultPolicy>) {
        if let Some(p) = policy {
            debug_assert!(p.validate().is_ok(), "invalid fault policy");
            self.feedback = FeedbackWindow::new(p.window);
        }
        self.fault_policy = policy;
    }

    /// Report one attempt outcome through the fault-feedback channel
    /// (§II-A adversarial-robustness extension). Pure telemetry when no
    /// [`FaultPolicy`] is installed; with one, the windowed crash/timeout
    /// rate starts padding first predictions and biasing retry escalations.
    /// Consumes no randomness either way.
    pub fn observe_outcome(&mut self, category: CategoryId, outcome: AttemptFeedback) {
        self.feedback.push(outcome);
        if S::ENABLED {
            let rate = self.windowed_fault_rate();
            let padding = self.fault_policy.map_or(1.0, |p| p.padding(rate));
            self.sink
                .emit(AllocEvent::feedback(category, outcome, rate, padding));
        }
    }

    /// The windowed fault rate feeding the policy factors (`0.0` while the
    /// window holds fewer than `min_samples` outcomes).
    pub fn windowed_fault_rate(&self) -> f64 {
        let min = self
            .fault_policy
            .map_or(FaultPolicy::default().min_samples, |p| p.min_samples);
        self.feedback.fault_rate(min)
    }

    /// Padding factor on first predictions; exactly `1.0` without a policy
    /// or without observed faults.
    fn feedback_padding(&self) -> f64 {
        self.fault_policy
            .map_or(1.0, |p| p.padding(self.windowed_fault_rate()))
    }

    /// Escalation factor on retry predictions; exactly `1.0` without a
    /// policy or without observed faults.
    fn feedback_escalation(&self) -> f64 {
        self.fault_policy
            .map_or(1.0, |p| p.escalation(self.windowed_fault_rate()))
    }

    /// The attached event sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// The attached event sink, mutably.
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Consume the allocator and return its sink.
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// Entry point taking the fields it needs, so callers can keep borrows
    /// of the sink and RNG alive alongside the category state.
    fn category_entry<'a>(
        categories: &'a mut HashMap<CategoryId, CategoryState>,
        config: &AllocatorConfig,
        factory: &EstimatorFactory,
        category: CategoryId,
    ) -> &'a mut CategoryState {
        let machine = config.machine;
        categories.entry(category).or_insert_with(|| CategoryState {
            estimators: config
                .managed
                .iter()
                .map(|&k| (k, factory(k, &machine)))
                .collect(),
            records: 0,
        })
    }

    /// The exploratory allocation vector. Unmanaged dimensions get the full
    /// machine so they never spuriously fail; so does a managed dimension
    /// whose probe is unset (zero) — e.g. managing the wall-time axis with
    /// the paper's (1 core, 1 GB, 1 GB) probe, which says nothing about
    /// time.
    fn exploratory_allocation(&self) -> ResourceVector {
        let mut alloc = self.config.machine.capacity;
        if let ExploratoryPolicy::Conservative { probe } = self.exploratory {
            for &k in &self.config.managed {
                if probe[k] > 0.0 {
                    alloc[k] = probe[k];
                }
            }
        }
        alloc.clamp_to(&self.config.machine.capacity)
    }

    /// Predict the allocation for a task's first attempt (§IV-A steps 2–3).
    pub fn predict_first(&mut self, category: CategoryId) -> AllocationDecision {
        let exploratory_records = self.config.exploratory_records;
        let machine_cap = self.config.machine.capacity;
        let in_exploration =
            self.categories.get(&category).map_or(0, |s| s.records) < exploratory_records;
        if in_exploration {
            let alloc = self.exploratory_allocation();
            if S::ENABLED {
                self.sink.emit(AllocEvent::predict(
                    category,
                    PredictKind::Explore,
                    alloc,
                    Vec::new(),
                ));
            }
            return AllocationDecision {
                alloc,
                kind: PredictKind::Explore,
                provenance: Vec::new(),
                infeasible: false,
            };
        }
        let n = self.config.managed.len();
        let mut draws: Vec<f64> = Vec::with_capacity(n);
        for _ in 0..n {
            draws.push(self.rng.gen::<f64>());
        }
        // Fault-feedback padding: ×1.0 (an exact no-op) without a policy or
        // without observed faults.
        let pad = self.feedback_padding();
        let exploratory_alloc = self.exploratory_allocation();
        let state =
            Self::category_entry(&mut self.categories, &self.config, &self.factory, category);
        let mut alloc = machine_cap;
        let mut provenance = Vec::with_capacity(n);
        for (i, (kind, est)) in state.estimators.iter_mut().enumerate() {
            let (value, source) = match est.predict_first(draws[i]) {
                Some(p) => (p.value, p.source),
                None => {
                    // No records for this axis: fall back to the exploratory
                    // allocation (probe or capacity, per policy).
                    let v = exploratory_alloc[*kind];
                    let source = if v >= machine_cap[*kind] {
                        AllocSource::Capacity
                    } else {
                        AllocSource::Probe
                    };
                    (v, source)
                }
            };
            if S::ENABLED {
                if let Some(info) = est.take_rebucket() {
                    self.sink.emit(AllocEvent::rebucket(category, *kind, &info));
                }
            }
            let value = value * pad;
            alloc[*kind] = value;
            provenance.push(AxisProvenance {
                resource: *kind,
                source,
                draw: Some(draws[i]),
                clamped: value > machine_cap[*kind],
            });
        }
        let alloc = alloc.clamp_to(&machine_cap);
        if S::ENABLED {
            self.sink.emit(AllocEvent::predict(
                category,
                PredictKind::First,
                alloc,
                provenance.clone(),
            ));
        }
        AllocationDecision {
            alloc,
            kind: PredictKind::First,
            provenance,
            infeasible: false,
        }
    }

    /// Predict the allocation for a retry after `prev` was killed having
    /// exhausted the `exhausted` dimensions. Non-exhausted dimensions keep
    /// their previous allocation (§IV-A: each resource escalates
    /// independently).
    pub fn predict_retry(
        &mut self,
        category: CategoryId,
        prev: &ResourceVector,
        exhausted: &ResourceMask,
    ) -> AllocationDecision {
        let exploratory_records = self.config.exploratory_records;
        let machine_cap = self.config.machine.capacity;
        let in_exploration =
            self.categories.get(&category).map_or(0, |s| s.records) < exploratory_records;
        let n = self.config.managed.len();
        let mut draws: Vec<f64> = Vec::with_capacity(n);
        for _ in 0..n {
            draws.push(self.rng.gen::<f64>());
        }
        // Fault-feedback escalation bias: ×1.0 (an exact no-op) without a
        // policy or without observed faults.
        let esc = self.feedback_escalation();
        let state =
            Self::category_entry(&mut self.categories, &self.config, &self.factory, category);
        let mut alloc = *prev;
        let mut provenance = Vec::with_capacity(n);
        for (i, (kind, est)) in state.estimators.iter_mut().enumerate() {
            if !exhausted.contains(*kind) {
                provenance.push(AxisProvenance {
                    resource: *kind,
                    source: AllocSource::Held,
                    draw: None,
                    clamped: false,
                });
                continue;
            }
            let (value, source, consumed) = if in_exploration {
                (double_allocation(prev[*kind]), AllocSource::Doubling, false)
            } else {
                match est.predict_retry(prev[*kind], draws[i]) {
                    Some(p) => (p.value, p.source, true),
                    None => (double_allocation(prev[*kind]), AllocSource::Doubling, true),
                }
            };
            if S::ENABLED {
                if let Some(info) = est.take_rebucket() {
                    self.sink.emit(AllocEvent::rebucket(category, *kind, &info));
                }
            }
            let raised = (value * esc).max(prev[*kind]);
            alloc[*kind] = raised;
            provenance.push(AxisProvenance {
                resource: *kind,
                source,
                draw: if consumed { Some(draws[i]) } else { None },
                clamped: raised > machine_cap[*kind],
            });
        }
        // An exhausted axis outside the managed set has no estimator to
        // escalate it; left alone the retry would return the same allocation
        // and the engine would re-kill the task forever. Raise such axes
        // straight to machine capacity — the most any retry could grant.
        for kind in exhausted.iter() {
            if self.config.managed.contains(&kind) {
                continue;
            }
            let raised = machine_cap[kind].max(alloc[kind]);
            provenance.push(AxisProvenance {
                resource: kind,
                source: AllocSource::Capacity,
                draw: None,
                clamped: raised > machine_cap[kind],
            });
            alloc[kind] = raised;
        }
        let alloc = alloc.clamp_to(&machine_cap);
        // If no exhausted axis actually grew, the retry is a guaranteed
        // repeat kill (everything exhausted already sat at capacity).
        let infeasible = exhausted.any() && !exhausted.iter().any(|k| alloc[k] > prev[k]);
        if S::ENABLED {
            for &kind in &self.config.managed {
                if exhausted.contains(kind) {
                    self.sink.emit(AllocEvent::escalate(
                        category,
                        kind,
                        prev[kind],
                        alloc[kind],
                    ));
                }
            }
            self.sink.emit(AllocEvent::predict(
                category,
                PredictKind::Retry,
                alloc,
                provenance.clone(),
            ));
        }
        AllocationDecision {
            alloc,
            kind: PredictKind::Retry,
            provenance,
            infeasible,
        }
    }

    /// A read-only snapshot of the bucketing state of one (category,
    /// resource kind) pair. Never recomputes — the view may lag behind
    /// unprocessed observations; call [`rebucket`](Self::rebucket) first
    /// for a fresh one. `None` when the category is unknown, the kind is
    /// unmanaged, or the algorithm keeps no bucket structure.
    pub fn snapshot(
        &self,
        category: CategoryId,
        kind: ResourceKind,
    ) -> Option<crate::bucket::BucketSet> {
        let state = self.categories.get(&category)?;
        state
            .estimators
            .iter()
            .find(|(k, _)| *k == kind)
            .and_then(|(_, est)| est.snapshot())
    }

    /// Force the estimator of one (category, resource kind) pair to fold
    /// pending observations into a fresh bucketing configuration, and
    /// describe the result. `None` when there is nothing to rebucket.
    pub fn rebucket(&mut self, category: CategoryId, kind: ResourceKind) -> Option<RebucketInfo> {
        let state = self.categories.get_mut(&category)?;
        let (_, est) = state.estimators.iter_mut().find(|(k, _)| *k == kind)?;
        let info = est.rebucket()?;
        if S::ENABLED {
            self.sink.emit(AllocEvent::rebucket(category, kind, &info));
        }
        Some(info)
    }

    /// Ingest a completed task's resource record (§IV-A step 6).
    ///
    /// The record is validated first: a non-finite or negative peak on any
    /// managed axis, or a non-finite/non-positive significance, would
    /// silently poison the estimators' weighted sums (`debug_assert`s inside
    /// the estimators vanish in release builds). Invalid records are
    /// rejected, counted (see [`rejected_records`](Self::rejected_records)),
    /// and leave every estimator untouched. Returns whether the record was
    /// ingested.
    pub fn observe(&mut self, record: &ResourceRecord) -> bool {
        let sig = if self.config.uniform_significance {
            1.0
        } else {
            record.significance
        };
        let valid = sig.is_finite()
            && sig > 0.0
            && self.config.managed.iter().all(|&k| {
                let peak = record.peak[k];
                peak.is_finite() && peak >= 0.0
            });
        if !valid {
            self.rejected += 1;
            return false;
        }
        if S::ENABLED {
            self.sink
                .emit(AllocEvent::observe(record.category, record.peak, sig));
        }
        let state = Self::category_entry(
            &mut self.categories,
            &self.config,
            &self.factory,
            record.category,
        );
        for (kind, est) in state.estimators.iter_mut() {
            est.observe(record.peak[*kind], sig);
        }
        state.records += 1;
        true
    }

    /// Number of records rejected at the [`observe`](Self::observe)
    /// validation boundary.
    pub fn rejected_records(&self) -> u64 {
        self.rejected
    }
}

impl<S: EventSink> fmt::Debug for Allocator<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Allocator")
            .field("label", &self.label)
            .field("categories", &self.categories.len())
            .field("traced", &S::ENABLED)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskSpec;
    use crate::trace::{MemorySink, TraceStats};

    fn record(id: u64, category: u32, peak: ResourceVector) -> ResourceRecord {
        ResourceRecord::from_task(&TaskSpec::new(id, category, peak, 10.0))
    }

    #[test]
    fn bucketing_explores_conservatively() {
        let mut a = Allocator::new(AlgorithmKind::ExhaustiveBucketing, 1);
        let alloc = a.predict_first(CategoryId(0));
        assert_eq!(alloc.cores(), 1.0);
        assert_eq!(alloc.memory_mb(), 1024.0);
        assert_eq!(alloc.disk_mb(), 1024.0);
        assert_eq!(alloc.kind, PredictKind::Explore);
        assert!(alloc.provenance.is_empty());
    }

    #[test]
    fn comparators_explore_with_whole_machine() {
        for kind in [
            AlgorithmKind::MaxSeen,
            AlgorithmKind::MinWaste,
            AlgorithmKind::MaxThroughput,
            AlgorithmKind::QuantizedBucketing,
            AlgorithmKind::WholeMachine,
        ] {
            let mut a = Allocator::new(kind, 1);
            let alloc = a.predict_first(CategoryId(0));
            assert_eq!(alloc, WorkerSpec::paper_default().capacity, "{kind}");
        }
    }

    #[test]
    fn leaves_exploration_after_threshold_records() {
        let mut a = Allocator::new(AlgorithmKind::MaxSeen, 1);
        for i in 0..9 {
            a.observe(&record(i, 0, ResourceVector::new(1.0, 300.0, 300.0)));
        }
        // 9 records: still exploring.
        assert_eq!(
            a.predict_first(CategoryId(0)),
            WorkerSpec::paper_default().capacity
        );
        a.observe(&record(9, 0, ResourceVector::new(1.0, 306.0, 306.0)));
        // 10 records: steady state. Max Seen rounds 306 → 500.
        let alloc = a.predict_first(CategoryId(0));
        assert_eq!(alloc.memory_mb(), 500.0);
        assert_eq!(alloc.disk_mb(), 500.0);
        assert_eq!(alloc.cores(), 1.0);
        assert_eq!(alloc.kind, PredictKind::First);
        assert_eq!(a.records_for(CategoryId(0)), 10);
    }

    #[test]
    fn categories_are_independent() {
        let mut a = Allocator::new(AlgorithmKind::MaxSeen, 1);
        for i in 0..10 {
            a.observe(&record(i, 0, ResourceVector::new(1.0, 100.0, 100.0)));
        }
        // Category 1 has no records: still whole-machine exploration.
        assert_eq!(
            a.predict_first(CategoryId(1)),
            WorkerSpec::paper_default().capacity
        );
        assert_eq!(a.records_for(CategoryId(1)), 0);
        // Category 0 is in steady state.
        assert!(a.predict_first(CategoryId(0)).memory_mb() <= 250.0);
    }

    #[test]
    fn exploratory_retry_doubles_only_exhausted_axes() {
        let mut a = Allocator::new(AlgorithmKind::GreedyBucketing, 1);
        let first = a.predict_first(CategoryId(0));
        let exhausted = ResourceMask::only(ResourceKind::MemoryMb);
        let retry = a.predict_retry(CategoryId(0), &first, &exhausted);
        assert_eq!(retry.memory_mb(), 2048.0);
        assert_eq!(retry.cores(), 1.0);
        assert_eq!(retry.disk_mb(), 1024.0);
        assert_eq!(retry.kind, PredictKind::Retry);
        // Provenance: memory doubled, the untouched axes held.
        let mem = retry.axis(ResourceKind::MemoryMb).unwrap();
        assert_eq!(mem.source, AllocSource::Doubling);
        assert_eq!(mem.draw, None); // exploration consults no estimator
        let cores = retry.axis(ResourceKind::Cores).unwrap();
        assert_eq!(cores.source, AllocSource::Held);
    }

    #[test]
    fn retry_never_shrinks_any_axis() {
        let mut a = Allocator::new(AlgorithmKind::ExhaustiveBucketing, 7);
        for i in 0..20 {
            a.observe(&record(
                i,
                0,
                ResourceVector::new(1.0, 100.0 + i as f64, 10.0),
            ));
        }
        let first = a.predict_first(CategoryId(0));
        let mask = ResourceMask::only(ResourceKind::MemoryMb);
        let retry = a.predict_retry(CategoryId(0), &first, &mask);
        assert!(retry.dominates(&first));
        assert!(retry.memory_mb() > first.memory_mb());
    }

    #[test]
    fn allocations_clamped_to_machine() {
        let mut a = Allocator::new(AlgorithmKind::MaxSeen, 1);
        for i in 0..10 {
            a.observe(&record(i, 0, ResourceVector::new(16.0, 65000.0, 65000.0)));
        }
        let cap = WorkerSpec::paper_default().capacity;
        // Max Seen rounds 65000 up to 65250 — the clamp keeps it at capacity.
        let alloc = a.predict_first(CategoryId(0));
        assert!(cap.dominates(&alloc));
        // Doubling past capacity stays clamped too, and the provenance
        // records that clamping intervened.
        let retry = a.predict_retry(
            CategoryId(0),
            &cap,
            &ResourceMask::only(ResourceKind::MemoryMb),
        );
        assert!(cap.dominates(&retry));
        assert!(retry.axis(ResourceKind::MemoryMb).unwrap().clamped);
    }

    #[test]
    fn steady_state_escalation_terminates_for_feasible_tasks() {
        for kind in AlgorithmKind::PAPER_SET {
            let mut a = Allocator::new(kind, 3);
            for i in 0..10 {
                a.observe(&record(i, 0, ResourceVector::new(1.0, 200.0, 50.0)));
            }
            // A task demanding more than anything seen (but feasible).
            let demand = ResourceVector::new(4.0, 30000.0, 4000.0);
            let mut alloc = a.predict_first(CategoryId(0)).into_alloc();
            let mut attempts = 0;
            while !alloc.dominates(&demand) {
                let exhausted = alloc.exceeded_by(&demand);
                alloc = a
                    .predict_retry(CategoryId(0), &alloc, &exhausted)
                    .into_alloc();
                attempts += 1;
                assert!(attempts < 64, "{kind}: escalation did not terminate");
            }
        }
    }

    #[test]
    fn unmanaged_axes_get_full_capacity() {
        let mut a = Allocator::new(AlgorithmKind::GreedyBucketing, 1);
        for i in 0..10 {
            a.observe(&record(i, 0, ResourceVector::new(1.0, 100.0, 100.0)));
        }
        let alloc = a.predict_first(CategoryId(0));
        // Gpus is unmanaged: allocated at machine capacity (0 by default),
        // and absent from the provenance.
        assert_eq!(alloc.gpus(), WorkerSpec::paper_default().capacity.gpus());
        assert!(alloc.axis(ResourceKind::Gpus).is_none());
        assert_eq!(alloc.provenance.len(), 3);
    }

    #[test]
    fn managed_axes_are_configurable() {
        let config = AllocatorConfig {
            managed: vec![ResourceKind::MemoryMb],
            ..AllocatorConfig::default()
        };
        let mut a = Allocator::with_config(AlgorithmKind::MaxSeen, config, 1);
        for i in 0..10 {
            a.observe(&record(i, 0, ResourceVector::new(2.0, 100.0, 100.0)));
        }
        let alloc = a.predict_first(CategoryId(0));
        // Memory managed; cores/disk fall back to machine capacity.
        assert_eq!(alloc.memory_mb(), 250.0);
        assert_eq!(alloc.cores(), 16.0);
        assert_eq!(alloc.disk_mb(), 65536.0);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let run = |seed| {
            let mut a = Allocator::new(AlgorithmKind::ExhaustiveBucketing, seed);
            for i in 0..30 {
                a.observe(&record(
                    i,
                    0,
                    ResourceVector::new(1.0, if i % 2 == 0 { 100.0 } else { 900.0 }, 10.0),
                ));
            }
            (0..20)
                .map(|_| a.predict_first(CategoryId(0)).memory_mb())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        // Different seeds should (almost surely) differ somewhere.
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn sink_choice_does_not_change_decisions() {
        let run_traced = |seed| {
            let mut a = Allocator::new(AlgorithmKind::ExhaustiveBucketing, seed)
                .with_sink(MemorySink::new());
            for i in 0..30 {
                a.observe(&record(
                    i,
                    0,
                    ResourceVector::new(1.0, 100.0 + i as f64, 10.0),
                ));
            }
            (0..20)
                .map(|_| a.predict_first(CategoryId(0)).memory_mb())
                .collect::<Vec<_>>()
        };
        let run_plain = |seed| {
            let mut a = Allocator::new(AlgorithmKind::ExhaustiveBucketing, seed);
            for i in 0..30 {
                a.observe(&record(
                    i,
                    0,
                    ResourceVector::new(1.0, 100.0 + i as f64, 10.0),
                ));
            }
            (0..20)
                .map(|_| a.predict_first(CategoryId(0)).memory_mb())
                .collect::<Vec<_>>()
        };
        assert_eq!(run_traced(9), run_plain(9));
    }

    #[test]
    fn retry_escalates_unmanaged_exhausted_axis_to_capacity() {
        // Regression: only memory is managed, but the kill exhausted cores.
        // The estimator loop and the escalate loop both iterate the managed
        // set, so before the unmanaged-axis pass the retry returned `prev`
        // unchanged — and the engine re-killed the task forever.
        let config = AllocatorConfig {
            managed: vec![ResourceKind::MemoryMb],
            ..AllocatorConfig::default()
        };
        let mut a = Allocator::with_config(AlgorithmKind::MaxSeen, config, 1);
        for i in 0..10 {
            a.observe(&record(i, 0, ResourceVector::new(2.0, 100.0, 100.0)));
        }
        let prev = ResourceVector::new(1.0, 250.0, 65536.0)
            .with(ResourceKind::TimeS, WorkerSpec::UNLIMITED_TIME_S);
        let exhausted = ResourceMask::only(ResourceKind::Cores);
        let retry = a.predict_retry(CategoryId(0), &prev, &exhausted);
        assert_ne!(
            retry.alloc, prev,
            "retry must change an allocation whose kill axis is unmanaged"
        );
        assert_eq!(retry.cores(), 16.0, "raised to machine capacity");
        assert!(!retry.infeasible);
        let cores = retry.axis(ResourceKind::Cores).unwrap();
        assert_eq!(cores.source, AllocSource::Capacity);
    }

    #[test]
    fn retry_at_capacity_is_marked_infeasible() {
        let mut a = Allocator::new(AlgorithmKind::MaxSeen, 1);
        for i in 0..10 {
            a.observe(&record(i, 0, ResourceVector::new(1.0, 100.0, 100.0)));
        }
        let cap = WorkerSpec::paper_default().capacity;
        // Every exhausted axis already at capacity: nothing can grow.
        let retry = a.predict_retry(
            CategoryId(0),
            &cap,
            &ResourceMask::only(ResourceKind::MemoryMb),
        );
        assert_eq!(retry.alloc, cap);
        assert!(retry.infeasible);
        // Same for an unmanaged axis already at capacity.
        let retry = a.predict_retry(CategoryId(0), &cap, &ResourceMask::only(ResourceKind::Gpus));
        assert!(retry.infeasible);
        // But a retry that can still raise some exhausted axis is feasible.
        let below = cap.with(ResourceKind::MemoryMb, 100.0);
        let retry = a.predict_retry(
            CategoryId(0),
            &below,
            &ResourceMask::only(ResourceKind::MemoryMb),
        );
        assert!(!retry.infeasible);
        assert!(retry.memory_mb() > 100.0);
    }

    #[test]
    fn non_finite_records_are_rejected_and_leave_predictions_unchanged() {
        // Max Seen predicts the rounded running maximum — deterministic, so
        // any post-poisoning drift is attributable to the bad record alone.
        let mut a = Allocator::new(AlgorithmKind::MaxSeen, 11);
        for i in 0..12 {
            a.observe(&record(
                i,
                0,
                ResourceVector::new(1.0, 200.0 + i as f64, 50.0),
            ));
        }
        let before = a.predict_first(CategoryId(0)).into_alloc();
        // NaN peak, negative peak, non-finite significance: all rejected.
        // Built directly — `TaskSpec::new` debug-asserts finiteness, but a
        // record arriving over the wire carries no such guarantee.
        let raw = |peak: ResourceVector, significance: f64| crate::task::ResourceRecord {
            task: crate::task::TaskId(100),
            category: CategoryId(0),
            peak,
            duration_s: 10.0,
            significance,
        };
        assert!(!a.observe(&raw(ResourceVector::new(1.0, f64::NAN, 50.0), 100.0)));
        assert!(!a.observe(&raw(ResourceVector::new(-1.0, 200.0, 50.0), 100.0)));
        assert!(!a.observe(&raw(ResourceVector::new(1.0, 200.0, 50.0), f64::INFINITY)));
        assert_eq!(a.rejected_records(), 3);
        assert_eq!(
            a.records_for(CategoryId(0)),
            12,
            "rejected records not counted"
        );
        let after = a.predict_first(CategoryId(0)).into_alloc();
        assert_eq!(before, after, "a poisoned record must not move predictions");
        // A later valid record still lands.
        assert!(a.observe(&record(103, 0, ResourceVector::new(1.0, 220.0, 50.0))));
        assert_eq!(a.records_for(CategoryId(0)), 13);
    }

    #[test]
    fn fault_feedback_without_observed_faults_changes_nothing() {
        // Same seed, one allocator with the policy installed and fed
        // success-only outcomes: every prediction must match the plain one.
        let mut plain = Allocator::new(AlgorithmKind::ExhaustiveBucketing, 9);
        let mut fed = Allocator::builder(AlgorithmKind::ExhaustiveBucketing)
            .seed(9)
            .fault_policy(FaultPolicy::default())
            .build();
        assert!(fed.fault_policy().is_some());
        for i in 0..20 {
            let r = record(i, 0, ResourceVector::new(1.0, 100.0 + i as f64, 10.0));
            plain.observe(&r);
            fed.observe(&r);
            fed.observe_outcome(CategoryId(0), AttemptFeedback::Success);
        }
        assert_eq!(fed.windowed_fault_rate(), 0.0);
        for _ in 0..5 {
            let a = plain.predict_first(CategoryId(0)).into_alloc();
            let b = fed.predict_first(CategoryId(0)).into_alloc();
            assert_eq!(a, b);
            let mask = ResourceMask::only(ResourceKind::MemoryMb);
            let ra = plain.predict_retry(CategoryId(0), &a, &mask).into_alloc();
            let rb = fed.predict_retry(CategoryId(0), &b, &mask).into_alloc();
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn fault_feedback_pads_and_escalates_under_observed_faults() {
        // Max Seen is deterministic, so any drift is the policy's doing.
        let mut a = Allocator::builder(AlgorithmKind::MaxSeen)
            .seed(1)
            .fault_policy(FaultPolicy::default())
            .build();
        for i in 0..10 {
            a.observe(&record(i, 0, ResourceVector::new(1.0, 300.0, 300.0)));
        }
        let baseline = a.predict_first(CategoryId(0)).into_alloc();
        for _ in 0..16 {
            a.observe_outcome(CategoryId(0), AttemptFeedback::Crash);
        }
        assert_eq!(a.windowed_fault_rate(), 1.0);
        let padded = a.predict_first(CategoryId(0)).into_alloc();
        assert!(
            padded.memory_mb() > baseline.memory_mb(),
            "padding must grow first predictions ({} vs {})",
            padded.memory_mb(),
            baseline.memory_mb()
        );
        // Escalation bias: a hostile window raises exhausted axes at least
        // as far as a calm one, from the same estimator state and seed.
        let retry_after = |outcome: AttemptFeedback| {
            let mut a = Allocator::builder(AlgorithmKind::GreedyBucketing)
                .seed(3)
                .fault_policy(FaultPolicy::default())
                .build();
            for i in 0..10 {
                a.observe(&record(
                    i,
                    0,
                    ResourceVector::new(1.0, 100.0 + 20.0 * i as f64, 50.0),
                ));
            }
            for _ in 0..16 {
                a.observe_outcome(CategoryId(0), outcome);
            }
            let prev = ResourceVector::new(1.0, 150.0, 50.0);
            a.predict_retry(
                CategoryId(0),
                &prev,
                &ResourceMask::only(ResourceKind::MemoryMb),
            )
            .into_alloc()
        };
        let calm = retry_after(AttemptFeedback::Success);
        let hostile = retry_after(AttemptFeedback::Crash);
        assert!(hostile.memory_mb() >= calm.memory_mb());
        assert!(hostile.memory_mb() > 150.0, "retry must still escalate");
    }

    #[test]
    fn observe_outcome_emits_feedback_events() {
        let mut a = Allocator::builder(AlgorithmKind::MaxSeen)
            .seed(2)
            .sink(TraceStats::new());
        a.observe_outcome(CategoryId(4), AttemptFeedback::Crash);
        a.observe_outcome(CategoryId(4), AttemptFeedback::Success);
        let stats = a.into_sink();
        assert_eq!(stats.overall.feedback, 2);
        assert_eq!(stats.category(CategoryId(4)).unwrap().feedback, 2);
    }

    #[test]
    fn paper_set_has_seven_distinct_labels() {
        let labels: std::collections::HashSet<_> =
            AlgorithmKind::PAPER_SET.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 7);
        assert!(AlgorithmKind::GreedyBucketing.is_novel_bucketing());
        assert!(!AlgorithmKind::MaxSeen.is_novel_bucketing());
    }

    #[test]
    fn builder_configures_everything() {
        let a = Allocator::builder(AlgorithmKind::MaxSeen)
            .seed(7)
            .machine(WorkerSpec::new(ResourceVector::new(8.0, 4096.0, 4096.0)))
            .managed(vec![ResourceKind::MemoryMb])
            .exploratory_records(3)
            .exploratory(ExploratoryPolicy::paper_conservative())
            .uniform_significance(true)
            .build();
        assert_eq!(a.config().machine.capacity.cores(), 8.0);
        assert_eq!(a.config().managed, vec![ResourceKind::MemoryMb]);
        assert_eq!(a.config().exploratory_records, 3);
        assert!(a.config().uniform_significance);
        assert_eq!(
            a.exploratory_policy(),
            ExploratoryPolicy::paper_conservative()
        );
        assert_eq!(a.algorithm(), Some(AlgorithmKind::MaxSeen));
    }

    #[test]
    fn traced_allocator_emits_the_full_event_stream() {
        let mut a = Allocator::builder(AlgorithmKind::GreedyBucketing)
            .seed(5)
            .exploratory_records(2)
            .sink(TraceStats::new());
        // One exploratory prediction.
        let _ = a.predict_first(CategoryId(0));
        // Two observations leave exploration.
        for i in 0..2 {
            a.observe(&record(i, 0, ResourceVector::new(1.0, 300.0, 100.0)));
        }
        // Steady-state first prediction (triggers the first rebucket of all
        // three managed axes).
        let _ = a.predict_first(CategoryId(0));
        // A retry exhausting one axis.
        let prev = ResourceVector::new(1.0, 300.0, 100.0);
        let _ = a.predict_retry(
            CategoryId(0),
            &prev,
            &ResourceMask::only(ResourceKind::MemoryMb),
        );
        let stats = a.into_sink();
        assert_eq!(stats.overall.explore, 1);
        assert_eq!(stats.overall.first, 1);
        assert_eq!(stats.overall.retry, 1);
        assert_eq!(stats.overall.observe, 2);
        assert_eq!(stats.overall.escalate, 1);
        assert_eq!(stats.overall.rebucket, 3, "one per managed axis");
        assert_eq!(stats.category(CategoryId(0)).unwrap().total(), 9);
    }

    #[test]
    fn snapshot_is_read_only_rebucket_refreshes() {
        let mut a = Allocator::new(AlgorithmKind::ExhaustiveBucketing, 1);
        assert!(a.snapshot(CategoryId(0), ResourceKind::MemoryMb).is_none());
        for i in 0..10 {
            a.observe(&record(i, 0, ResourceVector::new(1.0, 100.0, 100.0)));
        }
        // Observations alone never build buckets.
        assert!(a.snapshot(CategoryId(0), ResourceKind::MemoryMb).is_none());
        let info = a.rebucket(CategoryId(0), ResourceKind::MemoryMb).unwrap();
        assert_eq!(info.n_records, 10);
        let set = a.snapshot(CategoryId(0), ResourceKind::MemoryMb).unwrap();
        assert_eq!(set.len(), info.n_buckets);
        // Unmanaged axis: nothing to rebucket.
        assert!(a.rebucket(CategoryId(0), ResourceKind::Gpus).is_none());
    }

    #[test]
    fn decision_display_and_conversions() {
        let mut a = Allocator::new(AlgorithmKind::GreedyBucketing, 1);
        let d = a.predict_first(CategoryId(0));
        let s = format!("{d}");
        assert!(s.starts_with("explore"));
        let v: ResourceVector = d.clone().into();
        assert_eq!(d, v);
    }
}
