//! The adaptive resource allocator (§IV-D).
//!
//! An [`Allocator`] owns one estimator per *(task category, resource kind)*
//! pair — "an allocator treats each category of tasks independently and uses
//! a separate instance of a bucketing manager per category. Within each
//! category, the bucketing manager maintains a separate instance of a
//! resource state" — and implements the exploratory mode of §V-A:
//!
//! * the bucketing algorithms allocate a conservative (1 core, 1 GB memory,
//!   1 GB disk) probe until 10 records exist, doubling exhausted dimensions
//!   on failure;
//! * the comparator algorithms "allocate a whole machine instead, trading an
//!   expensive exploratory cost with a guarantee of successful task
//!   execution" (§V-C).
//!
//! All allocations are clamped to the worker capacity: nothing larger could
//! be scheduled.

use crate::baselines::{MaxSeen, QuantizedBucketing, Tovar, WholeMachine};
use crate::estimator::{double_allocation, ValueEstimator};
use crate::exhaustive::ExhaustiveBucketing;
use crate::greedy::GreedyBucketing;
use crate::kmeans::KMeansBucketing;
use crate::policy::BucketingEstimator;
use crate::resources::{ResourceKind, ResourceMask, ResourceVector, WorkerSpec};
use crate::task::{CategoryId, ResourceRecord};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// The seven allocation algorithms evaluated in §V, plus the incremental
/// Greedy Bucketing ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlgorithmKind {
    /// Naive baseline: a full worker per task.
    WholeMachine,
    /// Histogram-rounded running maximum.
    MaxSeen,
    /// Tovar et al. job sizing, minimum-waste objective.
    MinWaste,
    /// Tovar et al. job sizing, maximum-throughput objective.
    MaxThroughput,
    /// Phung et al. quantile bucketing (median split).
    QuantizedBucketing,
    /// This paper: Greedy Bucketing (Algorithm 1).
    GreedyBucketing,
    /// This paper: Exhaustive Bucketing (Algorithm 2).
    ExhaustiveBucketing,
    /// Ablation: Greedy Bucketing with the one-pass scan (identical output,
    /// different compute cost). Not part of the paper's evaluated set.
    GreedyBucketingIncremental,
    /// Extension: k-means clustering behind the shared bucketing policy —
    /// the other clustering rule of Phung et al. \[11\]. Not part of the
    /// paper's evaluated set.
    KMeansBucketing,
}

impl AlgorithmKind {
    /// The seven algorithms of Figures 5 and 6, in the paper's order.
    pub const PAPER_SET: [AlgorithmKind; 7] = [
        AlgorithmKind::WholeMachine,
        AlgorithmKind::MaxSeen,
        AlgorithmKind::MinWaste,
        AlgorithmKind::MaxThroughput,
        AlgorithmKind::QuantizedBucketing,
        AlgorithmKind::GreedyBucketing,
        AlgorithmKind::ExhaustiveBucketing,
    ];

    /// Stable report label.
    pub fn label(self) -> &'static str {
        match self {
            AlgorithmKind::WholeMachine => "whole-machine",
            AlgorithmKind::MaxSeen => "max-seen",
            AlgorithmKind::MinWaste => "min-waste",
            AlgorithmKind::MaxThroughput => "max-throughput",
            AlgorithmKind::QuantizedBucketing => "quantized-bucketing",
            AlgorithmKind::GreedyBucketing => "greedy-bucketing",
            AlgorithmKind::ExhaustiveBucketing => "exhaustive-bucketing",
            AlgorithmKind::GreedyBucketingIncremental => "greedy-bucketing-incremental",
            AlgorithmKind::KMeansBucketing => "kmeans-bucketing",
        }
    }

    /// Whether this is one of the paper's two novel bucketing algorithms
    /// (they use the conservative exploratory mode; comparators use the
    /// whole-machine exploratory mode, §V-C).
    pub fn is_novel_bucketing(self) -> bool {
        matches!(
            self,
            AlgorithmKind::GreedyBucketing
                | AlgorithmKind::ExhaustiveBucketing
                | AlgorithmKind::GreedyBucketingIncremental
                | AlgorithmKind::KMeansBucketing
        )
    }

    /// The output-identical but computationally cheaper variant, if one
    /// exists. The figure-level experiment harnesses substitute
    /// `GreedyBucketing → GreedyBucketingIncremental` (same partitions, a
    /// one-pass scan instead of the paper's quadratic one); Table I keeps
    /// the faithful variant because its compute cost is what that table
    /// reports.
    pub fn fast_equivalent(self) -> AlgorithmKind {
        match self {
            AlgorithmKind::GreedyBucketing => AlgorithmKind::GreedyBucketingIncremental,
            other => other,
        }
    }

    /// Construct the estimator for one resource dimension of one category.
    pub fn build_estimator(
        self,
        kind: ResourceKind,
        machine: &WorkerSpec,
    ) -> Box<dyn ValueEstimator> {
        let capacity = machine.capacity[kind];
        match self {
            AlgorithmKind::WholeMachine => Box::new(WholeMachine::new(capacity)),
            AlgorithmKind::MaxSeen => {
                let granularity = match kind {
                    ResourceKind::Cores | ResourceKind::Gpus => MaxSeen::CORES_GRANULARITY,
                    ResourceKind::MemoryMb | ResourceKind::DiskMb => {
                        MaxSeen::MEMORY_DISK_GRANULARITY
                    }
                    // Time limits round to the minute.
                    ResourceKind::TimeS => 60.0,
                };
                Box::new(MaxSeen::new(granularity))
            }
            AlgorithmKind::MinWaste => Box::new(Tovar::min_waste(capacity)),
            AlgorithmKind::MaxThroughput => Box::new(Tovar::max_throughput(capacity)),
            AlgorithmKind::QuantizedBucketing => Box::new(QuantizedBucketing::new()),
            AlgorithmKind::GreedyBucketing => {
                Box::new(BucketingEstimator::new(GreedyBucketing::new()))
            }
            AlgorithmKind::GreedyBucketingIncremental => {
                Box::new(BucketingEstimator::new(GreedyBucketing::incremental()))
            }
            AlgorithmKind::ExhaustiveBucketing => {
                Box::new(BucketingEstimator::new(ExhaustiveBucketing::new()))
            }
            AlgorithmKind::KMeansBucketing => {
                Box::new(BucketingEstimator::new(KMeansBucketing::new()))
            }
        }
    }
}

impl fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How a category is allocated before enough records exist.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ExploratoryPolicy {
    /// §V-A: allocate a small fixed probe (1 core, 1 GB memory, 1 GB disk in
    /// the paper), doubling exhausted dimensions on failure.
    Conservative {
        /// The probe allocation.
        probe: ResourceVector,
    },
    /// §V-C: allocate a whole worker until enough records exist.
    WholeMachine,
}

impl ExploratoryPolicy {
    /// The paper's conservative probe: 1 core, 1 GB memory, 1 GB disk.
    pub fn paper_conservative() -> Self {
        ExploratoryPolicy::Conservative {
            probe: ResourceVector::new(1.0, 1024.0, 1024.0),
        }
    }
}

/// Allocator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AllocatorConfig {
    /// Worker shape allocations are clamped to.
    pub machine: WorkerSpec,
    /// Resource kinds under management (default: cores, memory, disk).
    pub managed: Vec<ResourceKind>,
    /// Records required per category before leaving exploratory mode
    /// (10 in §V-A).
    pub exploratory_records: usize,
    /// Exploratory behaviour; `None` selects the paper's per-algorithm
    /// default (conservative for bucketing, whole machine for comparators).
    pub exploratory: Option<ExploratoryPolicy>,
    /// Ablation switch: feed every estimator a significance of 1 instead of
    /// the task id, disabling the §IV-A recency weighting.
    pub uniform_significance: bool,
}

impl Default for AllocatorConfig {
    fn default() -> Self {
        AllocatorConfig {
            machine: WorkerSpec::paper_default(),
            managed: ResourceKind::STANDARD.to_vec(),
            exploratory_records: 10,
            exploratory: None,
            uniform_significance: false,
        }
    }
}

/// Builds one estimator per (resource kind, worker shape); lets ablation
/// harnesses run non-default algorithm variants (e.g. Exhaustive Bucketing
/// with a different bucket cap) through the full allocator machinery.
pub type EstimatorFactory = Box<dyn Fn(ResourceKind, &WorkerSpec) -> Box<dyn ValueEstimator> + Send>;

/// Per-category estimator bank.
struct CategoryState {
    estimators: Vec<(ResourceKind, Box<dyn ValueEstimator>)>,
    records: usize,
}

/// The adaptive allocator: the §IV-D `Allocator` pseudocode, concretely.
pub struct Allocator {
    label: String,
    algorithm: Option<AlgorithmKind>,
    factory: EstimatorFactory,
    config: AllocatorConfig,
    exploratory: ExploratoryPolicy,
    categories: HashMap<CategoryId, CategoryState>,
    rng: StdRng,
}

impl Allocator {
    /// Build an allocator for `algorithm` with the paper's defaults and a
    /// deterministic seed.
    pub fn new(algorithm: AlgorithmKind, seed: u64) -> Self {
        Self::with_config(algorithm, AllocatorConfig::default(), seed)
    }

    /// Build with an explicit configuration.
    pub fn with_config(algorithm: AlgorithmKind, config: AllocatorConfig, seed: u64) -> Self {
        let exploratory = config.exploratory.unwrap_or(if algorithm.is_novel_bucketing() {
            ExploratoryPolicy::paper_conservative()
        } else {
            ExploratoryPolicy::WholeMachine
        });
        Allocator {
            label: algorithm.label().to_string(),
            algorithm: Some(algorithm),
            factory: Box::new(move |kind, machine| algorithm.build_estimator(kind, machine)),
            config,
            exploratory,
            categories: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Build around a custom estimator factory — the escape hatch for
    /// algorithm variants without an [`AlgorithmKind`] (ablations).
    /// `config.exploratory` must be set (there is no per-algorithm default
    /// to fall back to).
    pub fn with_factory(
        label: impl Into<String>,
        factory: EstimatorFactory,
        config: AllocatorConfig,
        seed: u64,
    ) -> Self {
        let exploratory = config
            .exploratory
            .expect("with_factory requires an explicit exploratory policy");
        Allocator {
            label: label.into(),
            algorithm: None,
            factory,
            config,
            exploratory,
            categories: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The algorithm driving this allocator (`None` for factory-built
    /// variants).
    pub fn algorithm(&self) -> Option<AlgorithmKind> {
        self.algorithm
    }

    /// Report label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The active configuration.
    pub fn config(&self) -> &AllocatorConfig {
        &self.config
    }

    /// The exploratory policy in effect.
    pub fn exploratory_policy(&self) -> ExploratoryPolicy {
        self.exploratory
    }

    /// Records observed for `category`.
    pub fn records_for(&self, category: CategoryId) -> usize {
        self.categories.get(&category).map_or(0, |s| s.records)
    }

    fn category_mut(&mut self, category: CategoryId) -> &mut CategoryState {
        let machine = self.config.machine;
        let managed = &self.config.managed;
        let factory = &self.factory;
        self.categories.entry(category).or_insert_with(|| CategoryState {
            estimators: managed
                .iter()
                .map(|&k| (k, factory(k, &machine)))
                .collect(),
            records: 0,
        })
    }

    /// The exploratory allocation vector. Unmanaged dimensions get the full
    /// machine so they never spuriously fail; so does a managed dimension
    /// whose probe is unset (zero) — e.g. managing the wall-time axis with
    /// the paper's (1 core, 1 GB, 1 GB) probe, which says nothing about
    /// time.
    fn exploratory_allocation(&self) -> ResourceVector {
        let mut alloc = self.config.machine.capacity;
        if let ExploratoryPolicy::Conservative { probe } = self.exploratory {
            for &k in &self.config.managed {
                if probe[k] > 0.0 {
                    alloc[k] = probe[k];
                }
            }
        }
        alloc.clamp_to(&self.config.machine.capacity)
    }

    /// Predict the allocation for a task's first attempt (§IV-A steps 2–3).
    pub fn predict_first(&mut self, category: CategoryId) -> ResourceVector {
        let exploratory_records = self.config.exploratory_records;
        let machine_cap = self.config.machine.capacity;
        let in_exploration =
            self.categories.get(&category).map_or(0, |s| s.records) < exploratory_records;
        if in_exploration {
            return self.exploratory_allocation();
        }
        let mut draws: Vec<f64> = Vec::new();
        {
            let n = self.config.managed.len();
            for _ in 0..n {
                draws.push(self.rng.gen::<f64>());
            }
        }
        let exploratory_alloc = self.exploratory_allocation();
        let state = self.category_mut(category);
        let mut alloc = machine_cap;
        for (i, (kind, est)) in state.estimators.iter_mut().enumerate() {
            alloc[*kind] = est
                .first(draws[i])
                .unwrap_or(exploratory_alloc[*kind]);
        }
        alloc.clamp_to(&machine_cap)
    }

    /// Predict the allocation for a retry after `prev` was killed having
    /// exhausted the `exhausted` dimensions. Non-exhausted dimensions keep
    /// their previous allocation (§IV-A: each resource escalates
    /// independently).
    pub fn predict_retry(
        &mut self,
        category: CategoryId,
        prev: &ResourceVector,
        exhausted: &ResourceMask,
    ) -> ResourceVector {
        let exploratory_records = self.config.exploratory_records;
        let machine_cap = self.config.machine.capacity;
        let in_exploration =
            self.categories.get(&category).map_or(0, |s| s.records) < exploratory_records;
        let mut draws: Vec<f64> = Vec::new();
        {
            let n = self.config.managed.len();
            for _ in 0..n {
                draws.push(self.rng.gen::<f64>());
            }
        }
        let state = self.category_mut(category);
        let mut alloc = *prev;
        for (i, (kind, est)) in state.estimators.iter_mut().enumerate() {
            if !exhausted.contains(*kind) {
                continue;
            }
            let next = if in_exploration {
                double_allocation(prev[*kind])
            } else {
                est.retry(prev[*kind], draws[i])
                    .unwrap_or_else(|| double_allocation(prev[*kind]))
            };
            alloc[*kind] = next.max(prev[*kind]);
        }
        alloc.clamp_to(&machine_cap)
    }

    /// A snapshot of the bucketing state of one (category, resource kind)
    /// pair, for observability. `None` when the category is unknown, the
    /// kind is unmanaged, or the algorithm keeps no bucket structure.
    pub fn snapshot(&mut self, category: CategoryId, kind: ResourceKind) -> Option<crate::bucket::BucketSet> {
        let state = self.categories.get_mut(&category)?;
        state
            .estimators
            .iter_mut()
            .find(|(k, _)| *k == kind)
            .and_then(|(_, est)| est.snapshot())
    }

    /// Ingest a completed task's resource record (§IV-A step 6).
    pub fn observe(&mut self, record: &ResourceRecord) {
        let sig = if self.config.uniform_significance {
            1.0
        } else {
            record.significance
        };
        let state = self.category_mut(record.category);
        for (kind, est) in state.estimators.iter_mut() {
            est.observe(record.peak[*kind], sig);
        }
        state.records += 1;
    }
}

impl fmt::Debug for Allocator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Allocator")
            .field("label", &self.label)
            .field("categories", &self.categories.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskSpec;

    fn record(id: u64, category: u32, peak: ResourceVector) -> ResourceRecord {
        ResourceRecord::from_task(&TaskSpec::new(id, category, peak, 10.0))
    }

    #[test]
    fn bucketing_explores_conservatively() {
        let mut a = Allocator::new(AlgorithmKind::ExhaustiveBucketing, 1);
        let alloc = a.predict_first(CategoryId(0));
        assert_eq!(alloc.cores(), 1.0);
        assert_eq!(alloc.memory_mb(), 1024.0);
        assert_eq!(alloc.disk_mb(), 1024.0);
    }

    #[test]
    fn comparators_explore_with_whole_machine() {
        for kind in [
            AlgorithmKind::MaxSeen,
            AlgorithmKind::MinWaste,
            AlgorithmKind::MaxThroughput,
            AlgorithmKind::QuantizedBucketing,
            AlgorithmKind::WholeMachine,
        ] {
            let mut a = Allocator::new(kind, 1);
            let alloc = a.predict_first(CategoryId(0));
            assert_eq!(alloc, WorkerSpec::paper_default().capacity, "{kind}");
        }
    }

    #[test]
    fn leaves_exploration_after_threshold_records() {
        let mut a = Allocator::new(AlgorithmKind::MaxSeen, 1);
        for i in 0..9 {
            a.observe(&record(i, 0, ResourceVector::new(1.0, 300.0, 300.0)));
        }
        // 9 records: still exploring.
        assert_eq!(
            a.predict_first(CategoryId(0)),
            WorkerSpec::paper_default().capacity
        );
        a.observe(&record(9, 0, ResourceVector::new(1.0, 306.0, 306.0)));
        // 10 records: steady state. Max Seen rounds 306 → 500.
        let alloc = a.predict_first(CategoryId(0));
        assert_eq!(alloc.memory_mb(), 500.0);
        assert_eq!(alloc.disk_mb(), 500.0);
        assert_eq!(alloc.cores(), 1.0);
        assert_eq!(a.records_for(CategoryId(0)), 10);
    }

    #[test]
    fn categories_are_independent() {
        let mut a = Allocator::new(AlgorithmKind::MaxSeen, 1);
        for i in 0..10 {
            a.observe(&record(i, 0, ResourceVector::new(1.0, 100.0, 100.0)));
        }
        // Category 1 has no records: still whole-machine exploration.
        assert_eq!(
            a.predict_first(CategoryId(1)),
            WorkerSpec::paper_default().capacity
        );
        assert_eq!(a.records_for(CategoryId(1)), 0);
        // Category 0 is in steady state.
        assert!(a.predict_first(CategoryId(0)).memory_mb() <= 250.0);
    }

    #[test]
    fn exploratory_retry_doubles_only_exhausted_axes() {
        let mut a = Allocator::new(AlgorithmKind::GreedyBucketing, 1);
        let first = a.predict_first(CategoryId(0));
        let exhausted = ResourceMask::only(ResourceKind::MemoryMb);
        let retry = a.predict_retry(CategoryId(0), &first, &exhausted);
        assert_eq!(retry.memory_mb(), 2048.0);
        assert_eq!(retry.cores(), 1.0);
        assert_eq!(retry.disk_mb(), 1024.0);
    }

    #[test]
    fn retry_never_shrinks_any_axis() {
        let mut a = Allocator::new(AlgorithmKind::ExhaustiveBucketing, 7);
        for i in 0..20 {
            a.observe(&record(
                i,
                0,
                ResourceVector::new(1.0, 100.0 + i as f64, 10.0),
            ));
        }
        let first = a.predict_first(CategoryId(0));
        let mask = ResourceMask::only(ResourceKind::MemoryMb);
        let retry = a.predict_retry(CategoryId(0), &first, &mask);
        assert!(retry.dominates(&first));
        assert!(retry.memory_mb() > first.memory_mb());
    }

    #[test]
    fn allocations_clamped_to_machine() {
        let mut a = Allocator::new(AlgorithmKind::MaxSeen, 1);
        for i in 0..10 {
            a.observe(&record(i, 0, ResourceVector::new(16.0, 65000.0, 65000.0)));
        }
        let cap = WorkerSpec::paper_default().capacity;
        // Max Seen rounds 65000 up to 65250 — the clamp keeps it at capacity.
        let alloc = a.predict_first(CategoryId(0));
        assert!(cap.dominates(&alloc));
        // Doubling past capacity stays clamped too.
        let retry = a.predict_retry(
            CategoryId(0),
            &cap,
            &ResourceMask::only(ResourceKind::MemoryMb),
        );
        assert!(cap.dominates(&retry));
    }

    #[test]
    fn steady_state_escalation_terminates_for_feasible_tasks() {
        for kind in AlgorithmKind::PAPER_SET {
            let mut a = Allocator::new(kind, 3);
            for i in 0..10 {
                a.observe(&record(i, 0, ResourceVector::new(1.0, 200.0, 50.0)));
            }
            // A task demanding more than anything seen (but feasible).
            let demand = ResourceVector::new(4.0, 30000.0, 4000.0);
            let mut alloc = a.predict_first(CategoryId(0));
            let mut attempts = 0;
            while !alloc.dominates(&demand) {
                let exhausted = alloc.exceeded_by(&demand);
                alloc = a.predict_retry(CategoryId(0), &alloc, &exhausted);
                attempts += 1;
                assert!(attempts < 64, "{kind}: escalation did not terminate");
            }
        }
    }

    #[test]
    fn unmanaged_axes_get_full_capacity() {
        let mut a = Allocator::new(AlgorithmKind::GreedyBucketing, 1);
        for i in 0..10 {
            a.observe(&record(i, 0, ResourceVector::new(1.0, 100.0, 100.0)));
        }
        let alloc = a.predict_first(CategoryId(0));
        // Gpus is unmanaged: allocated at machine capacity (0 by default).
        assert_eq!(alloc.gpus(), WorkerSpec::paper_default().capacity.gpus());
    }

    #[test]
    fn managed_axes_are_configurable() {
        let config = AllocatorConfig {
            managed: vec![ResourceKind::MemoryMb],
            ..AllocatorConfig::default()
        };
        let mut a = Allocator::with_config(AlgorithmKind::MaxSeen, config, 1);
        for i in 0..10 {
            a.observe(&record(i, 0, ResourceVector::new(2.0, 100.0, 100.0)));
        }
        let alloc = a.predict_first(CategoryId(0));
        // Memory managed; cores/disk fall back to machine capacity.
        assert_eq!(alloc.memory_mb(), 250.0);
        assert_eq!(alloc.cores(), 16.0);
        assert_eq!(alloc.disk_mb(), 65536.0);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let run = |seed| {
            let mut a = Allocator::new(AlgorithmKind::ExhaustiveBucketing, seed);
            for i in 0..30 {
                a.observe(&record(
                    i,
                    0,
                    ResourceVector::new(1.0, if i % 2 == 0 { 100.0 } else { 900.0 }, 10.0),
                ));
            }
            (0..20)
                .map(|_| a.predict_first(CategoryId(0)).memory_mb())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        // Different seeds should (almost surely) differ somewhere.
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn paper_set_has_seven_distinct_labels() {
        let labels: std::collections::HashSet<_> =
            AlgorithmKind::PAPER_SET.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 7);
        assert!(AlgorithmKind::GreedyBucketing.is_novel_bucketing());
        assert!(!AlgorithmKind::MaxSeen.is_novel_bucketing());
    }
}
