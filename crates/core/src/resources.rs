//! The resource model: resource kinds, resource vectors, and worker shapes.
//!
//! The paper (§II-B) defines a task `T(c, m, d, t)` consuming at most `c`
//! cores, `m` MB of memory and `d` MB of disk over `t` seconds, and an
//! allocation `A(c_a, m_a, d_a, t_a)` declared before execution. Cores,
//! memory and disk are *enforced* dimensions: a task that exceeds any of
//! them is killed and must be retried with a bigger allocation.
//!
//! [`ResourceVector`] is a small fixed-size vector indexed by
//! [`ResourceKind`]. Two extension axes demonstrate that the model extends
//! to additional resource types (paper §VII future work): a GPU axis
//! ([`ResourceKind::Gpus`]) and the allocation 4-tuple's wall-time component
//! ([`ResourceKind::TimeS`], enforced when managed, never packed). Both are
//! unmanaged by default — the paper's evaluation manages exactly cores,
//! memory and disk and reports no time efficiency.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Number of resource axes carried by a [`ResourceVector`].
pub const NUM_KINDS: usize = 5;

/// An enforced (allocatable) resource dimension.
///
/// The discriminants index into [`ResourceVector`] storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(usize)]
pub enum ResourceKind {
    /// CPU cores (fractional consumption allowed, e.g. 0.9 cores).
    Cores = 0,
    /// Memory in MB.
    MemoryMb = 1,
    /// Disk in MB.
    DiskMb = 2,
    /// GPUs — extension axis, unmanaged by the default allocator config.
    Gpus = 3,
    /// Wall time in seconds — the `t_a` component of the paper's allocation
    /// 4-tuple (§II-B). A *temporal* axis: it participates in enforcement
    /// (a task outliving its time allocation is killed) but not in worker
    /// packing, and is unmanaged by the default allocator config (matching
    /// the paper's evaluation, which reports no time efficiency).
    TimeS = 4,
}

impl ResourceKind {
    /// All resource kinds, in storage order.
    pub const ALL: [ResourceKind; NUM_KINDS] = [
        ResourceKind::Cores,
        ResourceKind::MemoryMb,
        ResourceKind::DiskMb,
        ResourceKind::Gpus,
        ResourceKind::TimeS,
    ];

    /// The three kinds evaluated in the paper (cores, memory, disk).
    pub const STANDARD: [ResourceKind; 3] = [
        ResourceKind::Cores,
        ResourceKind::MemoryMb,
        ResourceKind::DiskMb,
    ];

    /// Short lowercase label used in reports (`cores`, `memory`, `disk`,
    /// `gpus`, `time`).
    pub fn label(self) -> &'static str {
        match self {
            ResourceKind::Cores => "cores",
            ResourceKind::MemoryMb => "memory",
            ResourceKind::DiskMb => "disk",
            ResourceKind::Gpus => "gpus",
            ResourceKind::TimeS => "time",
        }
    }

    /// The unit the axis is measured in.
    pub fn unit(self) -> &'static str {
        match self {
            ResourceKind::Cores => "cores",
            ResourceKind::MemoryMb => "MB",
            ResourceKind::DiskMb => "MB",
            ResourceKind::Gpus => "gpus",
            ResourceKind::TimeS => "s",
        }
    }

    /// Whether this axis occupies worker capacity while a task runs.
    /// Temporal axes (wall time) are enforced but not packed.
    pub fn is_spatial(self) -> bool {
        !matches!(self, ResourceKind::TimeS)
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A boolean mask over resource kinds, used to report which dimensions of an
/// allocation a task exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ResourceMask {
    bits: [bool; NUM_KINDS],
}

impl ResourceMask {
    /// The empty mask (nothing exhausted).
    pub const NONE: ResourceMask = ResourceMask {
        bits: [false; NUM_KINDS],
    };

    /// Mask with a single kind set.
    pub fn only(kind: ResourceKind) -> Self {
        let mut m = Self::NONE;
        m.set(kind, true);
        m
    }

    /// Set or clear one kind.
    pub fn set(&mut self, kind: ResourceKind, value: bool) {
        self.bits[kind as usize] = value;
    }

    /// Whether `kind` is set.
    pub fn contains(&self, kind: ResourceKind) -> bool {
        self.bits[kind as usize]
    }

    /// Whether any kind is set.
    pub fn any(&self) -> bool {
        self.bits.iter().any(|&b| b)
    }

    /// Iterate over the kinds that are set.
    pub fn iter(&self) -> impl Iterator<Item = ResourceKind> + '_ {
        ResourceKind::ALL.into_iter().filter(|&k| self.contains(k))
    }

    /// Union with another mask.
    pub fn union(&self, other: &ResourceMask) -> ResourceMask {
        let mut out = *self;
        for k in ResourceKind::ALL {
            if other.contains(k) {
                out.set(k, true);
            }
        }
        out
    }
}

impl FromIterator<ResourceKind> for ResourceMask {
    fn from_iter<I: IntoIterator<Item = ResourceKind>>(iter: I) -> Self {
        let mut m = Self::NONE;
        for k in iter {
            m.set(k, true);
        }
        m
    }
}

/// A non-negative quantity per resource kind.
///
/// Used both for *peak consumption* (what a task actually used) and for
/// *allocations* (what the scheduler reserved for it).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ResourceVector {
    values: [f64; NUM_KINDS],
}

impl ResourceVector {
    /// The all-zero vector.
    pub const ZERO: ResourceVector = ResourceVector {
        values: [0.0; NUM_KINDS],
    };

    /// Build from cores / memory MB / disk MB, with zero GPUs.
    pub fn new(cores: f64, memory_mb: f64, disk_mb: f64) -> Self {
        let mut v = Self::ZERO;
        v[ResourceKind::Cores] = cores;
        v[ResourceKind::MemoryMb] = memory_mb;
        v[ResourceKind::DiskMb] = disk_mb;
        v
    }

    /// Build from an explicit array in [`ResourceKind::ALL`] order.
    pub fn from_array(values: [f64; NUM_KINDS]) -> Self {
        ResourceVector { values }
    }

    /// Cores component.
    pub fn cores(&self) -> f64 {
        self[ResourceKind::Cores]
    }

    /// Memory component (MB).
    pub fn memory_mb(&self) -> f64 {
        self[ResourceKind::MemoryMb]
    }

    /// Disk component (MB).
    pub fn disk_mb(&self) -> f64 {
        self[ResourceKind::DiskMb]
    }

    /// GPUs component.
    pub fn gpus(&self) -> f64 {
        self[ResourceKind::Gpus]
    }

    /// Return a copy with `kind` set to `value`.
    pub fn with(mut self, kind: ResourceKind, value: f64) -> Self {
        self[kind] = value;
        self
    }

    /// Whether every component of `self` is ≥ the matching component of
    /// `other` (i.e. an allocation of `self` can host a consumption of
    /// `other`).
    pub fn dominates(&self, other: &ResourceVector) -> bool {
        ResourceKind::ALL.iter().all(|&k| self[k] >= other[k])
    }

    /// The set of kinds where `demand` strictly exceeds `self`.
    ///
    /// In the paper's enforcement model (§II-B assumption 4) these are the
    /// dimensions whose over-consumption kills the task.
    pub fn exceeded_by(&self, demand: &ResourceVector) -> ResourceMask {
        ResourceKind::ALL
            .into_iter()
            .filter(|&k| demand[k] > self[k])
            .collect()
    }

    /// Component-wise maximum.
    pub fn max(&self, other: &ResourceVector) -> ResourceVector {
        let mut out = *self;
        for k in ResourceKind::ALL {
            out[k] = out[k].max(other[k]);
        }
        out
    }

    /// Component-wise minimum.
    pub fn min(&self, other: &ResourceVector) -> ResourceVector {
        let mut out = *self;
        for k in ResourceKind::ALL {
            out[k] = out[k].min(other[k]);
        }
        out
    }

    /// Component-wise sum.
    pub fn add(&self, other: &ResourceVector) -> ResourceVector {
        let mut out = *self;
        for k in ResourceKind::ALL {
            out[k] += other[k];
        }
        out
    }

    /// Component-wise difference (may go negative; callers clamp as needed).
    pub fn sub(&self, other: &ResourceVector) -> ResourceVector {
        let mut out = *self;
        for k in ResourceKind::ALL {
            out[k] -= other[k];
        }
        out
    }

    /// Scale every component by `s`.
    pub fn scale(&self, s: f64) -> ResourceVector {
        let mut out = *self;
        for k in ResourceKind::ALL {
            out[k] *= s;
        }
        out
    }

    /// Clamp each component into `[0, cap[k]]`.
    pub fn clamp_to(&self, cap: &ResourceVector) -> ResourceVector {
        let mut out = *self;
        for k in ResourceKind::ALL {
            out[k] = out[k].clamp(0.0, cap[k]);
        }
        out
    }

    /// Whether every component is finite and ≥ 0.
    pub fn is_valid(&self) -> bool {
        self.values.iter().all(|v| v.is_finite() && *v >= 0.0)
    }

    /// Iterate `(kind, value)` pairs in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (ResourceKind, f64)> + '_ {
        ResourceKind::ALL.into_iter().map(move |k| (k, self[k]))
    }
}

impl Index<ResourceKind> for ResourceVector {
    type Output = f64;
    fn index(&self, kind: ResourceKind) -> &f64 {
        &self.values[kind as usize]
    }
}

impl IndexMut<ResourceKind> for ResourceVector {
    fn index_mut(&mut self, kind: ResourceKind) -> &mut f64 {
        &mut self.values[kind as usize]
    }
}

impl fmt::Display for ResourceVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{cores: {:.2}, memory: {:.1} MB, disk: {:.1} MB}}",
            self.cores(),
            self.memory_mb(),
            self.disk_mb()
        )
    }
}

/// The shape of one worker node.
///
/// The paper's evaluation (§V-A) deploys workers with 16 cores, 64 GB of
/// memory and 64 GB of disk; [`WorkerSpec::paper_default`] reproduces that.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkerSpec {
    /// Total capacity of the worker.
    pub capacity: ResourceVector,
    /// Failure-domain group the worker belongs to (e.g. a rack or a spot
    /// block). Correlated faults take out every worker sharing a rack at
    /// once; `0` is the default, single shared domain.
    #[serde(default)]
    pub rack: u32,
}

impl WorkerSpec {
    /// Effectively unlimited wall time for a worker (about four months):
    /// the time axis is only constraining when an allocator manages it.
    pub const UNLIMITED_TIME_S: f64 = 1e7;

    /// 16 cores, 64 GB memory, 64 GB disk — the worker shape used in §V-A.
    pub fn paper_default() -> Self {
        WorkerSpec {
            capacity: ResourceVector::new(16.0, 64.0 * 1024.0, 64.0 * 1024.0)
                .with(ResourceKind::TimeS, Self::UNLIMITED_TIME_S),
            rack: 0,
        }
    }

    /// A worker with the given capacity, in the default rack `0`.
    pub fn new(capacity: ResourceVector) -> Self {
        WorkerSpec { capacity, rack: 0 }
    }

    /// The same worker assigned to failure-domain group `rack`.
    pub fn with_rack(mut self, rack: u32) -> Self {
        self.rack = rack;
        self
    }
}

impl Default for WorkerSpec {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_indexing_roundtrip() {
        let mut v = ResourceVector::new(2.0, 4096.0, 1024.0);
        assert_eq!(v.cores(), 2.0);
        assert_eq!(v.memory_mb(), 4096.0);
        assert_eq!(v.disk_mb(), 1024.0);
        assert_eq!(v.gpus(), 0.0);
        v[ResourceKind::Gpus] = 1.0;
        assert_eq!(v.gpus(), 1.0);
    }

    #[test]
    fn worker_spec_rack_defaults_and_round_trips() {
        let spec = WorkerSpec::paper_default();
        assert_eq!(spec.rack, 0);
        let racked = spec.with_rack(3);
        assert_eq!(racked.rack, 3);
        assert_eq!(racked.capacity, spec.capacity);
        // Old JSON without the field still loads, defaulting to rack 0.
        let legacy: WorkerSpec = serde_json::from_str(&format!(
            "{{\"capacity\":{}}}",
            serde_json::to_string(&spec.capacity).unwrap()
        ))
        .unwrap();
        assert_eq!(legacy, spec);
        let json = serde_json::to_string(&racked).unwrap();
        let back: WorkerSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, racked);
    }

    #[test]
    fn dominates_is_reflexive_and_componentwise() {
        let a = ResourceVector::new(2.0, 100.0, 100.0);
        let b = ResourceVector::new(1.0, 200.0, 50.0);
        assert!(a.dominates(&a));
        assert!(!a.dominates(&b)); // memory too small
        assert!(!b.dominates(&a)); // cores too small
        assert!(a.max(&b).dominates(&a));
        assert!(a.max(&b).dominates(&b));
        assert!(a.dominates(&a.min(&b)));
        assert!(b.dominates(&a.min(&b)));
    }

    #[test]
    fn exceeded_by_reports_only_over_consumed_axes() {
        let alloc = ResourceVector::new(1.0, 1024.0, 1024.0);
        let demand = ResourceVector::new(2.5, 512.0, 2048.0);
        let mask = alloc.exceeded_by(&demand);
        assert!(mask.contains(ResourceKind::Cores));
        assert!(!mask.contains(ResourceKind::MemoryMb));
        assert!(mask.contains(ResourceKind::DiskMb));
        assert!(mask.any());
        assert_eq!(mask.iter().count(), 2);
    }

    #[test]
    fn exceeded_by_equal_demand_is_empty() {
        let alloc = ResourceVector::new(1.0, 1024.0, 1024.0);
        let mask = alloc.exceeded_by(&alloc);
        assert!(!mask.any());
        assert_eq!(mask, ResourceMask::NONE);
    }

    #[test]
    fn mask_union_and_from_iter() {
        let a = ResourceMask::only(ResourceKind::Cores);
        let b = ResourceMask::only(ResourceKind::DiskMb);
        let u = a.union(&b);
        assert!(u.contains(ResourceKind::Cores));
        assert!(u.contains(ResourceKind::DiskMb));
        assert!(!u.contains(ResourceKind::MemoryMb));
        let c: ResourceMask = [ResourceKind::Cores, ResourceKind::DiskMb]
            .into_iter()
            .collect();
        assert_eq!(u, c);
    }

    #[test]
    fn arithmetic_helpers() {
        let a = ResourceVector::new(2.0, 100.0, 10.0);
        let b = ResourceVector::new(1.0, 50.0, 5.0);
        assert_eq!(a.add(&b), ResourceVector::new(3.0, 150.0, 15.0));
        assert_eq!(a.sub(&b), b);
        assert_eq!(b.scale(2.0), a);
    }

    #[test]
    fn clamp_to_caps_each_axis() {
        let cap = ResourceVector::new(16.0, 65536.0, 65536.0);
        let big = ResourceVector::new(100.0, 1e9, 3.0);
        let clamped = big.clamp_to(&cap);
        assert_eq!(clamped.cores(), 16.0);
        assert_eq!(clamped.memory_mb(), 65536.0);
        assert_eq!(clamped.disk_mb(), 3.0);
    }

    #[test]
    fn paper_default_worker_shape() {
        let w = WorkerSpec::paper_default();
        assert_eq!(w.capacity.cores(), 16.0);
        assert_eq!(w.capacity.memory_mb(), 65536.0);
        assert_eq!(w.capacity.disk_mb(), 65536.0);
    }

    #[test]
    fn validity_checks() {
        assert!(ResourceVector::new(1.0, 2.0, 3.0).is_valid());
        assert!(!ResourceVector::new(-1.0, 2.0, 3.0).is_valid());
        assert!(!ResourceVector::new(f64::NAN, 2.0, 3.0).is_valid());
        assert!(!ResourceVector::new(f64::INFINITY, 2.0, 3.0).is_valid());
    }

    #[test]
    fn display_formats() {
        let v = ResourceVector::new(1.0, 512.0, 306.0);
        let s = format!("{v}");
        assert!(s.contains("512.0 MB"));
        assert_eq!(ResourceKind::MemoryMb.to_string(), "memory");
    }
}
