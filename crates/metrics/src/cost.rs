//! Monetary cost accounting for opportunistic resources.
//!
//! The paper's §I motivation includes price: "large cloud vendors have been
//! offering opportunistic resources in their data centers at an extremely
//! low cost (up to 91% discount)". This module prices a run's §II-C
//! accounting — what the allocation *cost*, what the consumption was
//! *worth*, and what the waste burned — under a configurable rate card, so
//! the efficiency gains of a better allocator translate into dollars.
//!
//! Pricing follows the common cloud model: a bundled per-core-hour rate
//! (memory priced in as a per-GB-hour component), disk per GB-month scaled
//! to hours, and a multiplicative spot discount.

use crate::awe::WorkflowMetrics;
use serde::{Deserialize, Serialize};
use tora_alloc::resources::ResourceKind;

/// A rate card in dollars.
///
/// # Examples
///
/// ```
/// use tora_metrics::{CostModel, WorkflowMetrics};
///
/// let spot = CostModel::spot();
/// let bill = spot.bill(&WorkflowMetrics::new());
/// assert_eq!(bill.allocated, 0.0);
/// assert!(spot.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// $ per core-hour (on-demand).
    pub per_core_hour: f64,
    /// $ per GB-hour of memory (on-demand).
    pub per_gb_mem_hour: f64,
    /// $ per GB-hour of disk (on-demand).
    pub per_gb_disk_hour: f64,
    /// Multiplier applied to every rate (1.0 = on-demand, 0.09 = the 91%
    /// spot discount of the paper's introduction).
    pub discount: f64,
}

impl CostModel {
    /// A rate card in the ballpark of current on-demand cloud pricing.
    pub fn on_demand() -> Self {
        CostModel {
            per_core_hour: 0.04,
            per_gb_mem_hour: 0.005,
            per_gb_disk_hour: 0.0002,
            discount: 1.0,
        }
    }

    /// The same card at the 91% opportunistic discount of §I.
    pub fn spot() -> Self {
        CostModel {
            discount: 0.09,
            ..Self::on_demand()
        }
    }

    /// Validate the card.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("per_core_hour", self.per_core_hour),
            ("per_gb_mem_hour", self.per_gb_mem_hour),
            ("per_gb_disk_hour", self.per_gb_disk_hour),
            ("discount", self.discount),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("bad {name}: {v}"));
            }
        }
        Ok(())
    }

    /// Price one dimension's resource·seconds total.
    fn price(&self, kind: ResourceKind, resource_seconds: f64) -> f64 {
        let hours = resource_seconds / 3600.0;
        let rate = match kind {
            ResourceKind::Cores => self.per_core_hour,
            ResourceKind::MemoryMb => self.per_gb_mem_hour / 1024.0,
            ResourceKind::DiskMb => self.per_gb_disk_hour / 1024.0,
            // Unpriced axes.
            ResourceKind::Gpus | ResourceKind::TimeS => 0.0,
        };
        hours * rate * self.discount
    }

    /// Price a full run.
    pub fn bill(&self, metrics: &WorkflowMetrics) -> Bill {
        let mut bill = Bill::default();
        for kind in ResourceKind::STANDARD {
            bill.allocated += self.price(kind, metrics.total_allocation(kind));
            bill.consumed += self.price(kind, metrics.total_consumption(kind));
            let w = metrics.waste(kind);
            bill.internal_fragmentation += self.price(kind, w.internal_fragmentation);
            bill.failed_allocation += self.price(kind, w.failed_allocation);
        }
        bill
    }
}

/// Dollar totals of one run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Bill {
    /// What the allocations cost (what you pay).
    pub allocated: f64,
    /// What the useful consumption would have cost (the oracle's bill).
    pub consumed: f64,
    /// Dollars burned as internal fragmentation.
    pub internal_fragmentation: f64,
    /// Dollars burned as failed allocations.
    pub failed_allocation: f64,
}

impl Bill {
    /// Dollars wasted in total.
    pub fn wasted(&self) -> f64 {
        self.internal_fragmentation + self.failed_allocation
    }

    /// Share of the bill that did useful work (the dollar-weighted AWE).
    pub fn efficiency(&self) -> f64 {
        if self.allocated > 0.0 {
            self.consumed / self.allocated
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::{AttemptOutcome, TaskOutcome};
    use tora_alloc::resources::ResourceVector;
    use tora_alloc::task::{CategoryId, TaskId};

    fn metrics(peak_mem: f64, alloc_mem: f64, n: u64) -> WorkflowMetrics {
        (0..n)
            .map(|i| TaskOutcome {
                task: TaskId(i),
                category: CategoryId(0),
                peak: ResourceVector::new(1.0, peak_mem, 100.0),
                duration_s: 3600.0,
                attempts: vec![AttemptOutcome::success(
                    ResourceVector::new(1.0, alloc_mem, 100.0),
                    3600.0,
                )],
            })
            .collect()
    }

    #[test]
    fn bill_identity_holds() {
        let m = metrics(1024.0, 4096.0, 10);
        let card = CostModel::on_demand();
        let bill = card.bill(&m);
        assert!((bill.allocated - (bill.consumed + bill.wasted())).abs() < 1e-9);
        assert!(bill.efficiency() > 0.0 && bill.efficiency() < 1.0);
    }

    #[test]
    fn hand_computed_core_hour() {
        // 10 tasks × 1 core × 1 hour, perfectly allocated: exactly
        // 10 core-hours + memory + disk.
        let m = metrics(1024.0, 1024.0, 10);
        let bill = CostModel::on_demand().bill(&m);
        let expected = 10.0 * (0.04 + 0.005 /* 1 GB mem */ + 0.0002 * (100.0 / 1024.0));
        assert!(
            (bill.allocated - expected).abs() < 1e-9,
            "{}",
            bill.allocated
        );
        assert_eq!(bill.allocated, bill.consumed);
        assert_eq!(bill.wasted(), 0.0);
        assert_eq!(bill.efficiency(), 1.0);
    }

    #[test]
    fn spot_discount_scales_everything() {
        let m = metrics(1024.0, 4096.0, 5);
        let on_demand = CostModel::on_demand().bill(&m);
        let spot = CostModel::spot().bill(&m);
        assert!((spot.allocated - on_demand.allocated * 0.09).abs() < 1e-9);
        assert!((spot.wasted() - on_demand.wasted() * 0.09).abs() < 1e-9);
        // Efficiency is price-invariant.
        assert!((spot.efficiency() - on_demand.efficiency()).abs() < 1e-12);
    }

    #[test]
    fn failed_allocations_are_priced() {
        let o = TaskOutcome {
            task: TaskId(0),
            category: CategoryId(0),
            peak: ResourceVector::new(1.0, 1000.0, 10.0),
            duration_s: 3600.0,
            attempts: vec![
                AttemptOutcome::failure(ResourceVector::new(1.0, 500.0, 10.0), 1800.0),
                AttemptOutcome::success(ResourceVector::new(1.0, 1000.0, 10.0), 3600.0),
            ],
        };
        let m: WorkflowMetrics = [o].into_iter().collect();
        let bill = CostModel::on_demand().bill(&m);
        assert!(bill.failed_allocation > 0.0);
        assert_eq!(bill.internal_fragmentation, 0.0);
        assert!((bill.allocated - (bill.consumed + bill.wasted())).abs() < 1e-9);
    }

    #[test]
    fn validation() {
        assert!(CostModel::on_demand().validate().is_ok());
        assert!(CostModel::spot().validate().is_ok());
        let bad = CostModel {
            discount: -1.0,
            ..CostModel::on_demand()
        };
        assert!(bad.validate().is_err());
        let nan = CostModel {
            per_core_hour: f64::NAN,
            ..CostModel::on_demand()
        };
        assert!(nan.validate().is_err());
    }

    #[test]
    fn empty_run_costs_nothing() {
        let bill = CostModel::on_demand().bill(&WorkflowMetrics::new());
        assert_eq!(bill.allocated, 0.0);
        assert_eq!(bill.efficiency(), 0.0);
    }
}
