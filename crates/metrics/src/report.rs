//! Plain-text and CSV report rendering for the experiment harnesses.
//!
//! The figure/table binaries in `tora-bench` print the same rows/series the
//! paper reports; [`Table`] keeps that output aligned and exportable without
//! pulling in a plotting stack.

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Short rows are padded with empty cells; long rows
    /// extend the header width with blanks.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Convenience: append a row of displayable cells.
    pub fn row<D: std::fmt::Display>(&mut self, cells: &[D]) {
        self.push_row(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn width(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0)
    }

    /// Render as an aligned plain-text table.
    #[allow(clippy::needless_range_loop)] // columns are indexed across ragged rows
    pub fn render(&self) -> String {
        let width = self.width();
        fn cell(row: &[String], i: usize) -> &str {
            row.get(i).map(String::as_str).unwrap_or("")
        }
        let mut col_w = vec![0usize; width];
        for i in 0..width {
            col_w[i] = self
                .rows
                .iter()
                .map(|r| cell(r, i).len())
                .chain(std::iter::once(cell(&self.headers, i).len()))
                .max()
                .unwrap_or(0);
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let fmt_row = |out: &mut String, row: &[String]| {
            let mut line = String::new();
            for i in 0..width {
                if i > 0 {
                    line.push_str("  ");
                }
                let c = cell(row, i);
                // Left-align the first column, right-align the rest (numeric).
                if i == 0 {
                    let _ = write!(line, "{:<w$}", c, w = col_w[i]);
                } else {
                    let _ = write!(line, "{:>w$}", c, w = col_w[i]);
                }
            }
            let _ = writeln!(out, "{}", line.trim_end());
        };
        fmt_row(&mut out, &self.headers);
        let sep: Vec<String> = col_w.iter().map(|&w| "-".repeat(w)).collect();
        fmt_row(&mut out, &sep);
        for r in &self.rows {
            fmt_row(&mut out, r);
        }
        out
    }

    /// Render as CSV (comma-separated, quotes around cells containing
    /// commas or quotes).
    pub fn to_csv(&self) -> String {
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        let width = self.width();
        let write_row = |out: &mut String, row: &[String]| {
            let cells: Vec<String> = (0..width)
                .map(|i| esc(row.get(i).map(String::as_str).unwrap_or("")))
                .collect();
            let _ = writeln!(out, "{}", cells.join(","));
        };
        write_row(&mut out, &self.headers);
        for r in &self.rows {
            write_row(&mut out, r);
        }
        out
    }
}

/// Format a ratio as a percentage with one decimal, e.g. `0.9632` → `96.3%`.
pub fn pct(ratio: f64) -> String {
    format!("{:.1}%", ratio * 100.0)
}

/// Format a number with SI-style thousands grouping for readability.
pub fn grouped(value: f64) -> String {
    let s = format!("{value:.1}");
    let (int_part, frac) = s.split_once('.').unwrap_or((s.as_str(), "0"));
    let neg = int_part.starts_with('-');
    let digits: Vec<char> = int_part.trim_start_matches('-').chars().collect();
    let mut grouped = String::new();
    for (i, c) in digits.iter().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            grouped.push(',');
        }
        grouped.push(*c);
    }
    format!("{}{}.{}", if neg { "-" } else { "" }, grouped, frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["workflow", "awe"]);
        t.row(&["normal", "0.72"]);
        t.row(&["exponential-long-name", "0.21"]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // header + separator + 2 rows + title
        assert_eq!(lines.len(), 5);
        // Right-aligned second column: both rows end with the value.
        assert!(lines[3].trim_end().ends_with("0.72") || lines[4].trim_end().ends_with("0.72"));
    }

    #[test]
    fn csv_escapes_delimiters() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(&["x,y", "plain"]);
        t.row(&["q\"uote", "v"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"q\"\"uote\""));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn ragged_rows_are_padded() {
        let mut t = Table::new("", &["a", "b", "c"]);
        t.push_row(vec!["1".into()]);
        t.push_row(vec!["1".into(), "2".into(), "3".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains('4'));
        let csv = t.to_csv();
        for line in csv.lines() {
            assert_eq!(line.matches(',').count(), 3);
        }
    }

    #[test]
    fn pct_and_grouped_formatting() {
        assert_eq!(pct(0.9632), "96.3%");
        assert_eq!(pct(0.0), "0.0%");
        assert_eq!(grouped(441050.7), "441,050.7");
        assert_eq!(grouped(11.2), "11.2");
        assert_eq!(grouped(-1234.5), "-1,234.5");
        assert_eq!(grouped(1000.0), "1,000.0");
    }

    #[test]
    fn empty_table_renders_headers_only() {
        let t = Table::new("x", &["col"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.render().lines().count(), 3); // title, header, sep
    }
}
