//! Workflow-level aggregation: Absolute Workflow Efficiency and the waste
//! breakdown (§II-C).
//!
//! `AWE({Tᵢ}) = Σ C(Tᵢ) / Σ A(Tᵢ)` — total useful consumption over total
//! allocation. The metric treats the workflow as a whole and is independent
//! of how many (opportunistic) workers happened to be available, which is
//! why the paper uses it as the headline number in Figure 5. Figure 6 splits
//! the complementary waste into internal fragmentation and failed
//! allocations; [`WasteBreakdown`] carries that split.

use crate::outcome::{DeadLetter, TaskOutcome};
use serde::{Deserialize, Serialize};
use tora_alloc::resources::ResourceKind;
use tora_alloc::task::{CategoryId, TaskId};

/// The §II-C waste split of one resource dimension.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct WasteBreakdown {
    /// `Σ t·(a − c)` over tasks: over-allocation of successful attempts.
    pub internal_fragmentation: f64,
    /// `Σ Σ aᵢ·tᵢ` over tasks' failed attempts.
    pub failed_allocation: f64,
}

impl WasteBreakdown {
    /// Total waste.
    pub fn total(&self) -> f64 {
        self.internal_fragmentation + self.failed_allocation
    }

    /// Fraction of the waste that is failed allocation (0 when no waste).
    pub fn failed_share(&self) -> f64 {
        let t = self.total();
        if t > 0.0 {
            self.failed_allocation / t
        } else {
            0.0
        }
    }
}

/// Waste of one dimension attributed by blame. Complements the §II-C
/// [`WasteBreakdown`] (which splits by *mechanism*) with a split by
/// *responsibility*: did the allocator waste it, or did the environment?
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct WasteAttribution {
    /// Allocator's fault: internal fragmentation plus retry waste of
    /// attempts killed for over-consumption.
    pub allocation_induced: f64,
    /// Environment's fault: retry waste of crashed / timed-out attempts,
    /// plus straggler drag on completed runs.
    pub fault_induced: f64,
    /// Allocation burned by tasks that never completed at all.
    pub dead_lettered: f64,
}

impl WasteAttribution {
    /// Total attributed waste.
    pub fn total(&self) -> f64 {
        self.allocation_induced + self.fault_induced + self.dead_lettered
    }
}

/// Aggregated metrics over a completed workflow run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WorkflowMetrics {
    outcomes: Vec<TaskOutcome>,
    #[serde(default)]
    dead_letters: Vec<DeadLetter>,
}

impl WorkflowMetrics {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingest one finished task.
    pub fn push(&mut self, outcome: TaskOutcome) {
        debug_assert!(outcome.check().is_ok(), "{:?}", outcome.check());
        self.outcomes.push(outcome);
    }

    /// All recorded outcomes.
    pub fn outcomes(&self) -> &[TaskOutcome] {
        &self.outcomes
    }

    /// Number of completed tasks.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether no outcomes were recorded.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Total useful consumption `Σ C(Tᵢ)` of one dimension.
    pub fn total_consumption(&self, kind: ResourceKind) -> f64 {
        self.outcomes.iter().map(|o| o.consumption(kind)).sum()
    }

    /// Total allocation `Σ A(Tᵢ)` of one dimension.
    pub fn total_allocation(&self, kind: ResourceKind) -> f64 {
        self.outcomes.iter().map(|o| o.total_allocation(kind)).sum()
    }

    /// Absolute Workflow Efficiency of one dimension. `None` when the total
    /// allocation is zero (no tasks, or a dimension nobody allocates).
    pub fn awe(&self, kind: ResourceKind) -> Option<f64> {
        let alloc = self.total_allocation(kind);
        if alloc <= 0.0 {
            return None;
        }
        Some(self.total_consumption(kind) / alloc)
    }

    /// The waste breakdown of one dimension.
    pub fn waste(&self, kind: ResourceKind) -> WasteBreakdown {
        let mut w = WasteBreakdown::default();
        for o in &self.outcomes {
            w.internal_fragmentation += o.internal_fragmentation(kind);
            w.failed_allocation += o.failed_allocation_waste(kind);
        }
        w
    }

    /// Total failed attempts across the workflow.
    pub fn total_retries(&self) -> usize {
        self.outcomes.iter().map(|o| o.failed_attempts()).sum()
    }

    /// Record a task the engine gave up on.
    pub fn push_dead_letter(&mut self, letter: DeadLetter) {
        debug_assert!(letter.check().is_ok(), "{:?}", letter.check());
        self.dead_letters.push(letter);
    }

    /// Withdraw a task's dead letter — the engine is about to replay it —
    /// returning the letter so the caller can restore its attempt history.
    /// `None` when the task has no recorded dead letter.
    pub fn remove_dead_letter(&mut self, task: TaskId) -> Option<DeadLetter> {
        let idx = self.dead_letters.iter().position(|d| d.task == task)?;
        Some(self.dead_letters.remove(idx))
    }

    /// All dead-lettered tasks.
    pub fn dead_letters(&self) -> &[DeadLetter] {
        &self.dead_letters
    }

    /// Number of dead-lettered tasks.
    pub fn dead_lettered_count(&self) -> usize {
        self.dead_letters.len()
    }

    /// Allocation burned by dead-lettered tasks in one dimension.
    pub fn dead_letter_allocation(&self, kind: ResourceKind) -> f64 {
        self.dead_letters
            .iter()
            .map(|d| d.total_allocation(kind))
            .sum()
    }

    /// Degraded-mode AWE: useful consumption over *all* allocation the run
    /// charged, including what dead-lettered tasks burned. Equals
    /// [`awe`](Self::awe) when nothing was dead-lettered; strictly below it
    /// otherwise. `None` when the denominator is zero.
    pub fn degraded_awe(&self, kind: ResourceKind) -> Option<f64> {
        let alloc = self.total_allocation(kind) + self.dead_letter_allocation(kind);
        if alloc <= 0.0 {
            return None;
        }
        Some(self.total_consumption(kind) / alloc)
    }

    /// Split one dimension's waste by blame: allocator vs environment vs
    /// abandoned work. `allocation_induced + fault_induced` equals the
    /// §II-C waste of the completed tasks plus their straggler drag;
    /// adding `dead_lettered` covers every charged-but-useless unit.
    pub fn attributed_waste(&self, kind: ResourceKind) -> WasteAttribution {
        let mut w = WasteAttribution::default();
        for o in &self.outcomes {
            let fault_failed = o.fault_failed_waste(kind);
            w.allocation_induced +=
                o.internal_fragmentation(kind) + o.failed_allocation_waste(kind) - fault_failed;
            w.fault_induced += fault_failed + o.straggler_drag(kind);
        }
        w.dead_lettered = self.dead_letter_allocation(kind);
        w
    }

    /// Restrict to one category's outcomes (§III-B's per-category analysis).
    pub fn filter_category(&self, category: CategoryId) -> WorkflowMetrics {
        WorkflowMetrics {
            outcomes: self
                .outcomes
                .iter()
                .filter(|o| o.category == category)
                .cloned()
                .collect(),
            dead_letters: self
                .dead_letters
                .iter()
                .filter(|d| d.category == category)
                .cloned()
                .collect(),
        }
    }

    /// Merge another run's outcomes into this accumulator.
    pub fn merge(&mut self, other: WorkflowMetrics) {
        self.outcomes.extend(other.outcomes);
        self.dead_letters.extend(other.dead_letters);
    }
}

impl FromIterator<TaskOutcome> for WorkflowMetrics {
    fn from_iter<I: IntoIterator<Item = TaskOutcome>>(iter: I) -> Self {
        let mut m = WorkflowMetrics::new();
        for o in iter {
            m.push(o);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::AttemptOutcome;
    use tora_alloc::resources::ResourceVector;
    use tora_alloc::task::TaskId;

    fn simple(task: u64, category: u32, peak_mem: f64, alloc_mem: f64) -> TaskOutcome {
        let peak = ResourceVector::new(1.0, peak_mem, 10.0);
        let alloc = ResourceVector::new(1.0, alloc_mem, 10.0);
        TaskOutcome {
            task: TaskId(task),
            category: CategoryId(category),
            peak,
            duration_s: 10.0,
            attempts: vec![AttemptOutcome::success(alloc, 10.0)],
        }
    }

    #[test]
    fn awe_is_one_for_oracle_allocations() {
        let m: WorkflowMetrics = (0..10).map(|i| simple(i, 0, 100.0, 100.0)).collect();
        for kind in ResourceKind::STANDARD {
            assert_eq!(m.awe(kind), Some(1.0), "{kind}");
            assert_eq!(m.waste(kind).total(), 0.0, "{kind}");
        }
    }

    #[test]
    fn awe_matches_hand_computation() {
        // Two tasks, memory: (100 used / 200 alloc) and (300 used / 400 alloc)
        // over equal 10 s: AWE = 4000 / 6000 = 2/3.
        let m: WorkflowMetrics = [simple(0, 0, 100.0, 200.0), simple(1, 0, 300.0, 400.0)]
            .into_iter()
            .collect();
        let awe = m.awe(ResourceKind::MemoryMb).unwrap();
        assert!((awe - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn awe_in_unit_interval_and_consistent_with_waste() {
        let m: WorkflowMetrics = (0..20)
            .map(|i| simple(i, 0, 50.0 + i as f64, 200.0))
            .collect();
        let kind = ResourceKind::MemoryMb;
        let awe = m.awe(kind).unwrap();
        assert!(awe > 0.0 && awe <= 1.0);
        // AWE = C / (C + waste).
        let c = m.total_consumption(kind);
        let w = m.waste(kind).total();
        assert!((awe - c / (c + w)).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_have_no_awe() {
        let m = WorkflowMetrics::new();
        assert!(m.is_empty());
        assert_eq!(m.awe(ResourceKind::Cores), None);
        assert_eq!(m.total_retries(), 0);
    }

    #[test]
    fn waste_breakdown_splits_if_and_fa() {
        let peak = ResourceVector::new(1.0, 300.0, 10.0);
        let o = TaskOutcome {
            task: TaskId(0),
            category: CategoryId(0),
            peak,
            duration_s: 10.0,
            attempts: vec![
                AttemptOutcome::failure(ResourceVector::new(1.0, 100.0, 1024.0), 5.0),
                AttemptOutcome::success(ResourceVector::new(1.0, 350.0, 1024.0), 10.0),
            ],
        };
        let m: WorkflowMetrics = [o].into_iter().collect();
        let w = m.waste(ResourceKind::MemoryMb);
        assert_eq!(w.failed_allocation, 500.0);
        assert_eq!(w.internal_fragmentation, 500.0);
        assert_eq!(w.total(), 1000.0);
        assert_eq!(w.failed_share(), 0.5);
        assert_eq!(m.total_retries(), 1);
    }

    #[test]
    fn category_filter_partitions_outcomes() {
        let m: WorkflowMetrics = [
            simple(0, 0, 100.0, 200.0),
            simple(1, 1, 300.0, 300.0),
            simple(2, 0, 100.0, 100.0),
        ]
        .into_iter()
        .collect();
        let c0 = m.filter_category(CategoryId(0));
        let c1 = m.filter_category(CategoryId(1));
        assert_eq!(c0.len(), 2);
        assert_eq!(c1.len(), 1);
        assert_eq!(c1.awe(ResourceKind::MemoryMb), Some(1.0));
        assert_eq!(c0.len() + c1.len(), m.len());
    }

    #[test]
    fn merge_accumulates() {
        let mut a: WorkflowMetrics = (0..3).map(|i| simple(i, 0, 100.0, 100.0)).collect();
        let b: WorkflowMetrics = (3..5).map(|i| simple(i, 0, 100.0, 100.0)).collect();
        a.merge(b);
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn degraded_awe_charges_dead_lettered_allocation() {
        use crate::outcome::{DeadLetter, DeadLetterCause};
        // One clean completion: 100 used / 100 allocated over 10 s.
        let mut m: WorkflowMetrics = [simple(0, 0, 100.0, 100.0)].into_iter().collect();
        let k = ResourceKind::MemoryMb;
        assert_eq!(m.awe(k), Some(1.0));
        assert_eq!(m.degraded_awe(k), Some(1.0));
        // A dead-lettered task that burned 100 MB for 10 s.
        m.push_dead_letter(DeadLetter {
            task: TaskId(1),
            category: CategoryId(0),
            cause: DeadLetterCause::AttemptsExhausted,
            attempts: vec![AttemptOutcome::failure(
                ResourceVector::new(1.0, 100.0, 10.0),
                10.0,
            )],
        });
        assert_eq!(m.dead_lettered_count(), 1);
        // Plain AWE ignores the abandoned work; degraded AWE charges it:
        // 1000 useful / (1000 + 1000) charged.
        assert_eq!(m.awe(k), Some(1.0));
        assert_eq!(m.degraded_awe(k), Some(0.5));
        assert_eq!(m.dead_letter_allocation(k), 1000.0);
    }

    #[test]
    fn remove_dead_letter_withdraws_exactly_one() {
        use crate::outcome::{DeadLetter, DeadLetterCause};
        let mut m = WorkflowMetrics::new();
        let attempts = vec![AttemptOutcome::failure(
            ResourceVector::new(1.0, 100.0, 10.0),
            2.0,
        )];
        m.push_dead_letter(DeadLetter {
            task: TaskId(7),
            category: CategoryId(0),
            cause: DeadLetterCause::Unplaceable,
            attempts: attempts.clone(),
        });
        assert!(m.remove_dead_letter(TaskId(8)).is_none());
        let letter = m.remove_dead_letter(TaskId(7)).expect("recorded letter");
        assert_eq!(letter.attempts, attempts);
        assert_eq!(m.dead_lettered_count(), 0);
        assert!(m.remove_dead_letter(TaskId(7)).is_none());
    }

    #[test]
    fn attributed_waste_splits_blame() {
        use crate::outcome::{AttemptCause, DeadLetter, DeadLetterCause};
        let k = ResourceKind::MemoryMb;
        // Task 0: one allocation kill (100 MB × 4 s), then a straggled
        // success at 400 MB charged 12 s for a 10 s task.
        let o = TaskOutcome {
            task: TaskId(0),
            category: CategoryId(0),
            peak: ResourceVector::new(1.0, 300.0, 10.0),
            duration_s: 10.0,
            attempts: vec![
                AttemptOutcome::failure(ResourceVector::new(1.0, 100.0, 10.0), 4.0),
                AttemptOutcome::failure_with_cause(
                    ResourceVector::new(1.0, 400.0, 10.0),
                    2.0,
                    AttemptCause::WorkerCrash,
                ),
                AttemptOutcome::success_straggled(ResourceVector::new(1.0, 400.0, 10.0), 12.0),
            ],
        };
        o.check().unwrap();
        let mut m: WorkflowMetrics = [o].into_iter().collect();
        m.push_dead_letter(DeadLetter {
            task: TaskId(1),
            category: CategoryId(0),
            cause: DeadLetterCause::Unplaceable,
            attempts: vec![AttemptOutcome::failure_with_cause(
                ResourceVector::new(1.0, 50.0, 10.0),
                2.0,
                AttemptCause::WorkerCrash,
            )],
        });
        let w = m.attributed_waste(k);
        // Allocator's fault: kill waste 100×4 + fragmentation (400−300)×10.
        assert_eq!(w.allocation_induced, 400.0 + 1000.0);
        // Environment's fault: crash waste 400×2 + drag 400×(12−10).
        assert_eq!(w.fault_induced, 800.0 + 800.0);
        assert_eq!(w.dead_lettered, 100.0);
        // Every charged unit is useful consumption or attributed waste.
        let charged = m.total_allocation(k) + m.dead_letter_allocation(k);
        assert!((charged - (m.total_consumption(k) + w.total())).abs() < 1e-9);
    }
}
