//! Run summaries: convergence analysis and distributional statistics.
//!
//! §VII hypothesizes that the bucketing algorithms "perform well and quickly
//! converge to a steady state on workflows of around 4,500 tasks". This
//! module makes that claim measurable:
//!
//! * [`rolling_awe`] — AWE over a sliding window of completed tasks, the
//!   trajectory a converging allocator flattens out;
//! * [`steady_state_onset`] — the first task index after which the rolling
//!   AWE stays inside a band around its final value;
//! * [`attempts_histogram`] — how many tasks needed 1, 2, 3… attempts;
//! * [`Quantiles`] — min/p25/p50/p75/p90/max of any per-task series.

use crate::awe::WorkflowMetrics;
use crate::outcome::TaskOutcome;
use serde::{Deserialize, Serialize};
use tora_alloc::resources::ResourceKind;

/// Standard quantile summary of a series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quantiles {
    /// Smallest value.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Largest value.
    pub max: f64,
}

impl Quantiles {
    /// Compute over a series (`None` when empty). Nearest-rank quantiles.
    pub fn of(values: &[f64]) -> Option<Quantiles> {
        if values.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite series"));
        let n = sorted.len();
        let at = |q: f64| sorted[((q * n as f64).ceil() as usize).clamp(1, n) - 1];
        Some(Quantiles {
            min: sorted[0],
            p25: at(0.25),
            p50: at(0.5),
            p75: at(0.75),
            p90: at(0.9),
            max: sorted[n - 1],
        })
    }
}

/// Outcomes sorted by task id (completion order differs under concurrency;
/// convergence is defined over the submission order, which is what the
/// allocator's significance weighting follows).
fn by_task_id(metrics: &WorkflowMetrics) -> Vec<&TaskOutcome> {
    let mut outcomes: Vec<&TaskOutcome> = metrics.outcomes().iter().collect();
    outcomes.sort_by_key(|o| o.task);
    outcomes
}

/// AWE of one dimension over a sliding window of `window` tasks (by task
/// id). Returns `(last task id in window, awe)` pairs, one per window step
/// of `window / 4` tasks (overlapping windows smooth the trajectory).
pub fn rolling_awe(
    metrics: &WorkflowMetrics,
    kind: ResourceKind,
    window: usize,
) -> Vec<(u64, f64)> {
    let outcomes = by_task_id(metrics);
    if outcomes.is_empty() || window == 0 {
        return Vec::new();
    }
    let window = window.min(outcomes.len());
    let step = (window / 4).max(1);
    let mut points = Vec::new();
    let mut start = 0;
    loop {
        let end = (start + window).min(outcomes.len());
        let slice = &outcomes[start..end];
        let consumption: f64 = slice.iter().map(|o| o.consumption(kind)).sum();
        let allocation: f64 = slice.iter().map(|o| o.total_allocation(kind)).sum();
        if allocation > 0.0 {
            points.push((slice[slice.len() - 1].task.0, consumption / allocation));
        }
        if end == outcomes.len() {
            break;
        }
        start += step;
    }
    points
}

/// First task id after which the rolling AWE stays within `band` (absolute)
/// of its final value — the steady-state onset. `None` when the trajectory
/// never settles (or the run is too short to tell).
pub fn steady_state_onset(
    metrics: &WorkflowMetrics,
    kind: ResourceKind,
    window: usize,
    band: f64,
) -> Option<u64> {
    let trajectory = rolling_awe(metrics, kind, window);
    let &(_, last) = trajectory.last()?;
    let mut onset = None;
    for &(task, awe) in &trajectory {
        if (awe - last).abs() <= band {
            onset.get_or_insert(task);
        } else {
            onset = None;
        }
    }
    onset
}

/// Histogram of attempts-per-task: index 0 counts single-attempt tasks,
/// index 1 counts one-retry tasks, and so on.
pub fn attempts_histogram(metrics: &WorkflowMetrics) -> Vec<usize> {
    let mut hist = Vec::new();
    for o in metrics.outcomes() {
        let idx = o.attempts.len() - 1;
        if hist.len() <= idx {
            hist.resize(idx + 1, 0);
        }
        hist[idx] += 1;
    }
    hist
}

/// Quantiles of per-task total waste in one dimension.
pub fn waste_quantiles(metrics: &WorkflowMetrics, kind: ResourceKind) -> Option<Quantiles> {
    let series: Vec<f64> = metrics.outcomes().iter().map(|o| o.waste(kind)).collect();
    Quantiles::of(&series)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::AttemptOutcome;
    use tora_alloc::resources::ResourceVector;
    use tora_alloc::task::{CategoryId, TaskId};

    fn outcome(task: u64, peak_mem: f64, alloc_mem: f64, retries: usize) -> TaskOutcome {
        let peak = ResourceVector::new(1.0, peak_mem, 10.0);
        let alloc = ResourceVector::new(1.0, alloc_mem, 10.0);
        let mut attempts = vec![AttemptOutcome::failure(alloc.scale(0.5), 2.0); retries];
        attempts.push(AttemptOutcome::success(alloc, 10.0));
        TaskOutcome {
            task: TaskId(task),
            category: CategoryId(0),
            peak,
            duration_s: 10.0,
            attempts,
        }
    }

    #[test]
    fn quantiles_nearest_rank() {
        let q = Quantiles::of(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(q.min, 1.0);
        assert_eq!(q.p25, 1.0);
        assert_eq!(q.p50, 2.0);
        assert_eq!(q.p75, 3.0);
        assert_eq!(q.p90, 4.0);
        assert_eq!(q.max, 4.0);
        assert!(Quantiles::of(&[]).is_none());
    }

    #[test]
    fn rolling_awe_improves_as_allocations_tighten() {
        // Early tasks over-allocated 4×, later tasks perfectly allocated.
        let m: WorkflowMetrics = (0..100)
            .map(|i| {
                let alloc = if i < 50 { 400.0 } else { 100.0 };
                outcome(i, 100.0, alloc, 0)
            })
            .collect();
        let points = rolling_awe(&m, ResourceKind::MemoryMb, 20);
        assert!(points.len() > 3);
        let first = points.first().unwrap().1;
        let last = points.last().unwrap().1;
        assert!(first < 0.3, "early AWE {first}");
        assert!(last > 0.9, "late AWE {last}");
        // Points are ordered by task id.
        assert!(points.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn steady_state_onset_detects_the_transition() {
        let m: WorkflowMetrics = (0..200)
            .map(|i| {
                let alloc = if i < 60 { 800.0 } else { 110.0 };
                outcome(i, 100.0, alloc, 0)
            })
            .collect();
        let onset = steady_state_onset(&m, ResourceKind::MemoryMb, 20, 0.05).unwrap();
        assert!(
            (60..120).contains(&onset),
            "onset {onset} should follow the task-60 transition"
        );
        // A flat run converges immediately.
        let flat: WorkflowMetrics = (0..100).map(|i| outcome(i, 100.0, 110.0, 0)).collect();
        let onset = steady_state_onset(&flat, ResourceKind::MemoryMb, 20, 0.05).unwrap();
        assert!(onset < 30, "flat run onset {onset}");
    }

    #[test]
    fn attempts_histogram_counts_retries() {
        let m: WorkflowMetrics = vec![
            outcome(0, 100.0, 200.0, 0),
            outcome(1, 100.0, 200.0, 0),
            outcome(2, 100.0, 200.0, 1),
            outcome(3, 100.0, 200.0, 3),
        ]
        .into_iter()
        .collect();
        let hist = attempts_histogram(&m);
        assert_eq!(hist, vec![2, 1, 0, 1]);
        assert!(attempts_histogram(&WorkflowMetrics::new()).is_empty());
    }

    #[test]
    fn waste_quantiles_reflect_spread() {
        let m: WorkflowMetrics = (0..10)
            .map(|i| outcome(i, 100.0, 100.0 + (i as f64) * 50.0, 0))
            .collect();
        let q = waste_quantiles(&m, ResourceKind::MemoryMb).unwrap();
        assert_eq!(q.min, 0.0); // task 0 perfectly allocated
        assert_eq!(q.max, 4500.0); // (550-100)×10
        assert!(q.p50 > q.p25 && q.p75 > q.p50);
    }
}
