//! # tora-metrics — resource waste and efficiency accounting
//!
//! Implements the evaluation metrics of §II-C of Phung & Thain (IPDPS 2024):
//!
//! * per-task **resource waste**, split into *internal fragmentation*
//!   (`t·(a−c)` of the successful attempt) and *failed allocation*
//!   (`Σ aᵢ·tᵢ` of killed attempts) — [`outcome`];
//! * **Absolute Workflow Efficiency** (`Σ C(Tᵢ) / Σ A(Tᵢ)`), the headline,
//!   worker-count-independent metric of Figures 5 and 6 — [`awe`];
//! * aligned-text/CSV [`report`] tables used by the experiment harnesses.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod awe;
pub mod cost;
pub mod critical;
pub mod outcome;
pub mod report;
pub mod summary;

pub use awe::{WasteAttribution, WasteBreakdown, WorkflowMetrics};
pub use cost::{Bill, CostModel};
pub use critical::CriticalPathStats;
pub use outcome::{AttemptCause, AttemptOutcome, DeadLetter, DeadLetterCause, TaskOutcome};
pub use report::{grouped, pct, Table};
pub use summary::{
    attempts_histogram, rolling_awe, steady_state_onset, waste_quantiles, Quantiles,
};
