//! Per-task execution outcomes: the raw material of every §II-C metric.
//!
//! A task may take several attempts: zero or more *failed allocations*
//! (killed for over-consuming some dimension) followed by one successful
//! run. Each attempt records the allocation it held and the time it was
//! charged for; the waste definitions of §II-C fall out directly:
//!
//! * **Internal fragmentation** `t · (a − c)` — the successful attempt's
//!   over-allocation, integrated over its duration.
//! * **Failed allocation** `Σ aᵢ · tᵢ` — everything a failed attempt held,
//!   for as long as it held it.

use serde::{Deserialize, Serialize};
use tora_alloc::resources::{ResourceKind, ResourceVector};
use tora_alloc::task::{CategoryId, TaskId};

/// Why an attempt ended the way it did. Separates *allocation-induced*
/// endings (the §II-B kill for over-consumption) from *fault-induced* ones
/// (the environment failed the attempt), which is what lets the waste
/// attribution split retry waste by blame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum AttemptCause {
    /// Ran to completion under its allocation.
    #[default]
    Completed,
    /// Completed, but straggled: held its allocation for longer than the
    /// task's true duration (the overhang is fault-induced drag waste).
    StragglerCompleted,
    /// Killed for over-consuming a dimension (§II-B assumption 4).
    ResourceExhausted,
    /// Lost when its worker crashed (abrupt departure, record lost).
    WorkerCrash,
    /// Hung past the straggler timeout and was killed.
    StragglerTimeout,
}

impl AttemptCause {
    /// Whether the environment, not the allocation, is to blame.
    pub fn is_fault(self) -> bool {
        matches!(
            self,
            AttemptCause::StragglerCompleted
                | AttemptCause::WorkerCrash
                | AttemptCause::StragglerTimeout
        )
    }

    /// Stable report label.
    pub fn label(self) -> &'static str {
        match self {
            AttemptCause::Completed => "completed",
            AttemptCause::StragglerCompleted => "straggler-completed",
            AttemptCause::ResourceExhausted => "resource-exhausted",
            AttemptCause::WorkerCrash => "worker-crash",
            AttemptCause::StragglerTimeout => "straggler-timeout",
        }
    }
}

/// One attempt of one task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttemptOutcome {
    /// The allocation the attempt held.
    pub allocation: ResourceVector,
    /// Seconds the attempt occupied its allocation (full duration for a
    /// success; time-to-kill for a failure).
    pub charged_time_s: f64,
    /// Whether the attempt completed successfully.
    pub success: bool,
    /// Why the attempt ended.
    #[serde(default)]
    pub cause: AttemptCause,
    /// Nominal task-seconds of finished work this (failed) attempt banked
    /// via checkpoint/restart and handed to the retry. Zero everywhere
    /// unless the engine ran with `checkpointed_fraction > 0`; always zero
    /// on a successful attempt.
    #[serde(default)]
    pub salvaged_s: f64,
}

impl AttemptOutcome {
    /// A successful attempt.
    pub fn success(allocation: ResourceVector, charged_time_s: f64) -> Self {
        AttemptOutcome {
            allocation,
            charged_time_s,
            success: true,
            cause: AttemptCause::Completed,
            salvaged_s: 0.0,
        }
    }

    /// A successful attempt that straggled: completed, but occupied its
    /// allocation for `charged_time_s` seconds — longer than the task's
    /// true duration.
    pub fn success_straggled(allocation: ResourceVector, charged_time_s: f64) -> Self {
        AttemptOutcome {
            allocation,
            charged_time_s,
            success: true,
            cause: AttemptCause::StragglerCompleted,
            salvaged_s: 0.0,
        }
    }

    /// A failed (killed) attempt.
    pub fn failure(allocation: ResourceVector, charged_time_s: f64) -> Self {
        AttemptOutcome {
            allocation,
            charged_time_s,
            success: false,
            cause: AttemptCause::ResourceExhausted,
            salvaged_s: 0.0,
        }
    }

    /// A failed attempt with an explicit cause (crash, straggler timeout).
    pub fn failure_with_cause(
        allocation: ResourceVector,
        charged_time_s: f64,
        cause: AttemptCause,
    ) -> Self {
        debug_assert!(!matches!(
            cause,
            AttemptCause::Completed | AttemptCause::StragglerCompleted
        ));
        AttemptOutcome {
            allocation,
            charged_time_s,
            success: false,
            cause,
            salvaged_s: 0.0,
        }
    }
}

/// The full execution history of one task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskOutcome {
    /// The task.
    pub task: TaskId,
    /// Its category.
    pub category: CategoryId,
    /// Measured peak consumption of the successful run.
    pub peak: ResourceVector,
    /// Duration of the successful run, seconds.
    pub duration_s: f64,
    /// Attempts in order; the last must be the (single) success.
    pub attempts: Vec<AttemptOutcome>,
}

impl TaskOutcome {
    /// Validate structural invariants: at least one attempt, exactly one
    /// success and it is last, non-negative times, and the successful
    /// allocation dominates the peak.
    pub fn check(&self) -> Result<(), String> {
        let Some(last) = self.attempts.last() else {
            return Err(format!("{}: no attempts", self.task));
        };
        if !last.success {
            return Err(format!("{}: last attempt is not a success", self.task));
        }
        let successes = self.attempts.iter().filter(|a| a.success).count();
        if successes != 1 {
            return Err(format!("{}: {successes} successful attempts", self.task));
        }
        if self.attempts.iter().any(|a| a.charged_time_s < 0.0) {
            return Err(format!("{}: negative charged time", self.task));
        }
        if !last.allocation.dominates(&self.peak) {
            return Err(format!(
                "{}: successful allocation {} does not cover peak {}",
                self.task, last.allocation, self.peak
            ));
        }
        for a in &self.attempts {
            let completing = matches!(
                a.cause,
                AttemptCause::Completed | AttemptCause::StragglerCompleted
            );
            if a.success != completing {
                return Err(format!(
                    "{}: attempt success={} contradicts cause {}",
                    self.task,
                    a.success,
                    a.cause.label()
                ));
            }
            if a.salvaged_s < 0.0 {
                return Err(format!("{}: negative salvaged work", self.task));
            }
            if a.success && a.salvaged_s != 0.0 {
                return Err(format!(
                    "{}: successful attempt claims salvaged work",
                    self.task
                ));
            }
        }
        if self.salvaged_s() > self.duration_s + 1e-9 {
            return Err(format!(
                "{}: salvaged {} s exceeds duration {} s",
                self.task,
                self.salvaged_s(),
                self.duration_s
            ));
        }
        Ok(())
    }

    /// Total checkpoint-salvaged work over the failed attempts, nominal
    /// task-seconds. Zero unless the run checkpointed.
    pub fn salvaged_s(&self) -> f64 {
        self.attempts.iter().map(|a| a.salvaged_s).sum()
    }

    /// The successful attempt.
    pub fn final_attempt(&self) -> &AttemptOutcome {
        self.attempts.last().expect("outcome with no attempts")
    }

    /// Number of failed allocations (`k` in §II-C).
    pub fn failed_attempts(&self) -> usize {
        self.attempts.len() - 1
    }

    /// Useful consumption `C(T) = c · t` of one dimension.
    pub fn consumption(&self, kind: ResourceKind) -> f64 {
        self.peak[kind] * self.duration_s
    }

    /// Total allocation `A(T) = a·t + Σ aᵢ·tᵢ` of one dimension.
    pub fn total_allocation(&self, kind: ResourceKind) -> f64 {
        self.attempts
            .iter()
            .map(|a| a.allocation[kind] * a.charged_time_s)
            .sum()
    }

    /// Internal fragmentation `t · (a − c)` of one dimension. Under
    /// checkpoint/restart the successful attempt only runs the *remaining*
    /// duration (`t − Σ salvaged`), so the over-allocation is integrated
    /// over that shorter span; with no salvage this is exactly the §II-C
    /// definition.
    pub fn internal_fragmentation(&self, kind: ResourceKind) -> f64 {
        let last = self.final_attempt();
        (last.allocation[kind] - self.peak[kind]) * (self.duration_s - self.salvaged_s())
    }

    /// Failed-allocation waste `Σ aᵢ·tᵢ` of one dimension. A checkpointed
    /// attempt's banked work was *not* wasted: the salvaged share, priced
    /// at the task's true consumption rate, is credited back, so only the
    /// genuinely lost remainder counts.
    pub fn failed_allocation_waste(&self, kind: ResourceKind) -> f64 {
        self.attempts
            .iter()
            .filter(|a| !a.success)
            .map(|a| a.allocation[kind] * a.charged_time_s - self.peak[kind] * a.salvaged_s)
            .sum()
    }

    /// Total waste of one dimension (§II-C `ResourceWaste(T)`).
    pub fn waste(&self, kind: ResourceKind) -> f64 {
        self.internal_fragmentation(kind) + self.failed_allocation_waste(kind)
    }

    /// Straggler drag of one dimension: allocation the successful attempt
    /// held *beyond* the task's true duration. Zero for non-straggled runs.
    /// With drag, the accounting identity reads
    /// `A = C + IF + FA + drag` — drag is fault-induced waste the §II-C
    /// split does not see.
    pub fn straggler_drag(&self, kind: ResourceKind) -> f64 {
        let last = self.final_attempt();
        last.allocation[kind]
            * (last.charged_time_s - (self.duration_s - self.salvaged_s())).max(0.0)
    }

    /// Failed-allocation waste of one dimension restricted to attempts the
    /// environment failed (crashes, straggler timeouts) — the retry waste
    /// the allocator is *not* to blame for. Checkpoint salvage is credited
    /// here the same way as in [`TaskOutcome::failed_allocation_waste`]
    /// (every salvaged attempt is a crash, hence fault-caused).
    pub fn fault_failed_waste(&self, kind: ResourceKind) -> f64 {
        self.attempts
            .iter()
            .filter(|a| !a.success && a.cause.is_fault())
            .map(|a| a.allocation[kind] * a.charged_time_s - self.peak[kind] * a.salvaged_s)
            .sum()
    }
}

/// Why a task was dead-lettered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeadLetterCause {
    /// Burned through the configured attempt budget.
    AttemptsExhausted,
    /// Exceeded the transient-dispatch-failure retry budget.
    DispatchRetriesExhausted,
    /// Its allocation exceeds the total capacity of every live worker.
    Unplaceable,
    /// A retry could not grow any exhausted axis: the task does not fit the
    /// machine and every further attempt would reproduce the same kill.
    Infeasible,
    /// A dependency was dead-lettered, so this task can never become ready.
    DependencyDeadLettered,
    /// The run stalled with no event that could ever make progress.
    Stalled,
}

impl DeadLetterCause {
    /// Whether a recovered pool can sensibly retry the task: the
    /// abandonment was an environment *shortage* (no worker big enough, a
    /// flaky dispatch path), not a structural impossibility. Attempt-budget
    /// and infeasibility causes stay terminal — re-running would reproduce
    /// the same failure — and a cascaded dependency dead-letter stays dead
    /// with its missing input.
    pub fn replayable(self) -> bool {
        matches!(
            self,
            DeadLetterCause::Unplaceable | DeadLetterCause::DispatchRetriesExhausted
        )
    }

    /// Stable report label.
    pub fn label(self) -> &'static str {
        match self {
            DeadLetterCause::AttemptsExhausted => "attempts-exhausted",
            DeadLetterCause::DispatchRetriesExhausted => "dispatch-retries-exhausted",
            DeadLetterCause::Unplaceable => "unplaceable",
            DeadLetterCause::Infeasible => "infeasible",
            DeadLetterCause::DependencyDeadLettered => "dependency-dead-lettered",
            DeadLetterCause::Stalled => "stalled",
        }
    }
}

/// The terminal state of a task that will never complete: the engine gave
/// up on it, recording why and what its attempts cost. The counterpart of
/// [`TaskOutcome`] — every submitted task ends as exactly one of the two,
/// which is the conservation identity `submitted = completed +
/// dead-lettered` a chaos run checks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeadLetter {
    /// The task.
    pub task: TaskId,
    /// Its category.
    pub category: CategoryId,
    /// Why it was abandoned.
    pub cause: DeadLetterCause,
    /// Every attempt it burned before being abandoned (possibly none — a
    /// task dead-lettered before it ever dispatched).
    pub attempts: Vec<AttemptOutcome>,
}

impl DeadLetter {
    /// Validate structural invariants: no successful attempts (a success
    /// would have completed the task), non-negative charged times.
    pub fn check(&self) -> Result<(), String> {
        if let Some(a) = self.attempts.iter().find(|a| a.success) {
            return Err(format!(
                "{}: dead-lettered task has a successful attempt ({})",
                self.task,
                a.cause.label()
            ));
        }
        if self.attempts.iter().any(|a| a.charged_time_s < 0.0) {
            return Err(format!("{}: negative charged time", self.task));
        }
        Ok(())
    }

    /// Total allocation the abandoned attempts held — all of it waste.
    pub fn total_allocation(&self, kind: ResourceKind) -> f64 {
        self.attempts
            .iter()
            .map(|a| a.allocation[kind] * a.charged_time_s)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome_with_retry() -> TaskOutcome {
        // Peak 300 MB over 10 s. First attempt: 100 MB killed at 4 s.
        // Second attempt: 400 MB, success.
        TaskOutcome {
            task: TaskId(0),
            category: CategoryId(0),
            peak: ResourceVector::new(1.0, 300.0, 50.0),
            duration_s: 10.0,
            attempts: vec![
                AttemptOutcome::failure(ResourceVector::new(1.0, 100.0, 1024.0), 4.0),
                AttemptOutcome::success(ResourceVector::new(1.0, 400.0, 1024.0), 10.0),
            ],
        }
    }

    #[test]
    fn waste_identity_holds() {
        // A(T) = C(T) + IF + FA for the dimension, when the success is
        // charged its full duration.
        let o = outcome_with_retry();
        o.check().unwrap();
        for kind in ResourceKind::STANDARD {
            let lhs = o.total_allocation(kind);
            let rhs = o.consumption(kind)
                + o.internal_fragmentation(kind)
                + o.failed_allocation_waste(kind);
            assert!((lhs - rhs).abs() < 1e-9, "{kind}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn hand_computed_memory_waste() {
        let o = outcome_with_retry();
        let k = ResourceKind::MemoryMb;
        assert_eq!(o.consumption(k), 3000.0); // 300 × 10
        assert_eq!(o.failed_allocation_waste(k), 400.0); // 100 × 4
        assert_eq!(o.internal_fragmentation(k), 1000.0); // (400−300) × 10
        assert_eq!(o.waste(k), 1400.0);
        assert_eq!(o.total_allocation(k), 4400.0); // 400 + 4000
        assert_eq!(o.failed_attempts(), 1);
    }

    #[test]
    fn perfect_allocation_has_zero_waste() {
        let peak = ResourceVector::new(2.0, 512.0, 306.0);
        let o = TaskOutcome {
            task: TaskId(1),
            category: CategoryId(0),
            peak,
            duration_s: 7.0,
            attempts: vec![AttemptOutcome::success(peak, 7.0)],
        };
        o.check().unwrap();
        for kind in ResourceKind::STANDARD {
            assert_eq!(o.waste(kind), 0.0, "{kind}");
            assert_eq!(o.total_allocation(kind), o.consumption(kind), "{kind}");
        }
    }

    #[test]
    fn salvage_identity_holds() {
        // A crashed attempt banked 3 s of its work; the retry ran the
        // remaining 7 s. A = C + IF + FA + drag still balances, with the
        // salvaged share credited out of the failed-allocation waste.
        let mut crashed = AttemptOutcome::failure_with_cause(
            ResourceVector::new(1.0, 400.0, 1024.0),
            3.0,
            AttemptCause::WorkerCrash,
        );
        crashed.salvaged_s = 3.0;
        let o = TaskOutcome {
            task: TaskId(7),
            category: CategoryId(0),
            peak: ResourceVector::new(1.0, 300.0, 50.0),
            duration_s: 10.0,
            attempts: vec![
                crashed,
                AttemptOutcome::success(ResourceVector::new(1.0, 400.0, 1024.0), 7.0),
            ],
        };
        o.check().unwrap();
        assert_eq!(o.salvaged_s(), 3.0);
        for kind in ResourceKind::STANDARD {
            let lhs = o.total_allocation(kind);
            let rhs = o.consumption(kind)
                + o.internal_fragmentation(kind)
                + o.failed_allocation_waste(kind)
                + o.straggler_drag(kind);
            assert!((lhs - rhs).abs() < 1e-9, "{kind}: {lhs} vs {rhs}");
        }
        // Memory by hand: FA = 400×3 − 300×3 = 300; IF = (400−300)×7 = 700.
        let k = ResourceKind::MemoryMb;
        assert_eq!(o.failed_allocation_waste(k), 300.0);
        assert_eq!(o.internal_fragmentation(k), 700.0);
        assert_eq!(o.straggler_drag(k), 0.0);
        assert_eq!(o.fault_failed_waste(k), 300.0);
    }

    #[test]
    fn check_rejects_bad_salvage() {
        let peak = ResourceVector::new(1.0, 100.0, 10.0);
        let alloc = ResourceVector::new(1.0, 128.0, 16.0);
        let mut success_with_salvage = AttemptOutcome::success(alloc, 5.0);
        success_with_salvage.salvaged_s = 1.0;
        let o = TaskOutcome {
            task: TaskId(8),
            category: CategoryId(0),
            peak,
            duration_s: 5.0,
            attempts: vec![success_with_salvage],
        };
        assert!(o.check().is_err(), "success must not claim salvage");
        let mut over_salvaged = AttemptOutcome::failure(alloc, 2.0);
        over_salvaged.salvaged_s = 50.0; // more than the whole task
        let o = TaskOutcome {
            attempts: vec![over_salvaged, AttemptOutcome::success(alloc, 5.0)],
            ..o
        };
        assert!(o.check().is_err(), "salvage cannot exceed the duration");
    }

    #[test]
    fn replayable_covers_exactly_the_shortage_causes() {
        use DeadLetterCause::*;
        for (cause, want) in [
            (AttemptsExhausted, false),
            (DispatchRetriesExhausted, true),
            (Unplaceable, true),
            (Infeasible, false),
            (DependencyDeadLettered, false),
            (Stalled, false),
        ] {
            assert_eq!(cause.replayable(), want, "{}", cause.label());
        }
    }

    #[test]
    fn check_rejects_malformed_outcomes() {
        let peak = ResourceVector::new(1.0, 100.0, 10.0);
        let good = AttemptOutcome::success(ResourceVector::new(1.0, 128.0, 16.0), 5.0);

        let empty = TaskOutcome {
            task: TaskId(2),
            category: CategoryId(0),
            peak,
            duration_s: 5.0,
            attempts: vec![],
        };
        assert!(empty.check().is_err());

        let failure_last = TaskOutcome {
            attempts: vec![good, AttemptOutcome::failure(peak, 1.0)],
            ..empty.clone()
        };
        assert!(failure_last.check().is_err());

        let double_success = TaskOutcome {
            attempts: vec![good, good],
            ..empty.clone()
        };
        assert!(double_success.check().is_err());

        let under_allocated = TaskOutcome {
            attempts: vec![AttemptOutcome::success(
                ResourceVector::new(1.0, 50.0, 16.0),
                5.0,
            )],
            ..empty
        };
        assert!(under_allocated.check().is_err());
    }
}
