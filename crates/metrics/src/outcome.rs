//! Per-task execution outcomes: the raw material of every §II-C metric.
//!
//! A task may take several attempts: zero or more *failed allocations*
//! (killed for over-consuming some dimension) followed by one successful
//! run. Each attempt records the allocation it held and the time it was
//! charged for; the waste definitions of §II-C fall out directly:
//!
//! * **Internal fragmentation** `t · (a − c)` — the successful attempt's
//!   over-allocation, integrated over its duration.
//! * **Failed allocation** `Σ aᵢ · tᵢ` — everything a failed attempt held,
//!   for as long as it held it.

use serde::{Deserialize, Serialize};
use tora_alloc::resources::{ResourceKind, ResourceVector};
use tora_alloc::task::{CategoryId, TaskId};

/// One attempt of one task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttemptOutcome {
    /// The allocation the attempt held.
    pub allocation: ResourceVector,
    /// Seconds the attempt occupied its allocation (full duration for a
    /// success; time-to-kill for a failure).
    pub charged_time_s: f64,
    /// Whether the attempt completed successfully.
    pub success: bool,
}

impl AttemptOutcome {
    /// A successful attempt.
    pub fn success(allocation: ResourceVector, charged_time_s: f64) -> Self {
        AttemptOutcome {
            allocation,
            charged_time_s,
            success: true,
        }
    }

    /// A failed (killed) attempt.
    pub fn failure(allocation: ResourceVector, charged_time_s: f64) -> Self {
        AttemptOutcome {
            allocation,
            charged_time_s,
            success: false,
        }
    }
}

/// The full execution history of one task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskOutcome {
    /// The task.
    pub task: TaskId,
    /// Its category.
    pub category: CategoryId,
    /// Measured peak consumption of the successful run.
    pub peak: ResourceVector,
    /// Duration of the successful run, seconds.
    pub duration_s: f64,
    /// Attempts in order; the last must be the (single) success.
    pub attempts: Vec<AttemptOutcome>,
}

impl TaskOutcome {
    /// Validate structural invariants: at least one attempt, exactly one
    /// success and it is last, non-negative times, and the successful
    /// allocation dominates the peak.
    pub fn check(&self) -> Result<(), String> {
        let Some(last) = self.attempts.last() else {
            return Err(format!("{}: no attempts", self.task));
        };
        if !last.success {
            return Err(format!("{}: last attempt is not a success", self.task));
        }
        let successes = self.attempts.iter().filter(|a| a.success).count();
        if successes != 1 {
            return Err(format!("{}: {successes} successful attempts", self.task));
        }
        if self.attempts.iter().any(|a| a.charged_time_s < 0.0) {
            return Err(format!("{}: negative charged time", self.task));
        }
        if !last.allocation.dominates(&self.peak) {
            return Err(format!(
                "{}: successful allocation {} does not cover peak {}",
                self.task, last.allocation, self.peak
            ));
        }
        Ok(())
    }

    /// The successful attempt.
    pub fn final_attempt(&self) -> &AttemptOutcome {
        self.attempts.last().expect("outcome with no attempts")
    }

    /// Number of failed allocations (`k` in §II-C).
    pub fn failed_attempts(&self) -> usize {
        self.attempts.len() - 1
    }

    /// Useful consumption `C(T) = c · t` of one dimension.
    pub fn consumption(&self, kind: ResourceKind) -> f64 {
        self.peak[kind] * self.duration_s
    }

    /// Total allocation `A(T) = a·t + Σ aᵢ·tᵢ` of one dimension.
    pub fn total_allocation(&self, kind: ResourceKind) -> f64 {
        self.attempts
            .iter()
            .map(|a| a.allocation[kind] * a.charged_time_s)
            .sum()
    }

    /// Internal fragmentation `t · (a − c)` of one dimension.
    pub fn internal_fragmentation(&self, kind: ResourceKind) -> f64 {
        let last = self.final_attempt();
        (last.allocation[kind] - self.peak[kind]) * self.duration_s
    }

    /// Failed-allocation waste `Σ aᵢ·tᵢ` of one dimension.
    pub fn failed_allocation_waste(&self, kind: ResourceKind) -> f64 {
        self.attempts
            .iter()
            .filter(|a| !a.success)
            .map(|a| a.allocation[kind] * a.charged_time_s)
            .sum()
    }

    /// Total waste of one dimension (§II-C `ResourceWaste(T)`).
    pub fn waste(&self, kind: ResourceKind) -> f64 {
        self.internal_fragmentation(kind) + self.failed_allocation_waste(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome_with_retry() -> TaskOutcome {
        // Peak 300 MB over 10 s. First attempt: 100 MB killed at 4 s.
        // Second attempt: 400 MB, success.
        TaskOutcome {
            task: TaskId(0),
            category: CategoryId(0),
            peak: ResourceVector::new(1.0, 300.0, 50.0),
            duration_s: 10.0,
            attempts: vec![
                AttemptOutcome::failure(ResourceVector::new(1.0, 100.0, 1024.0), 4.0),
                AttemptOutcome::success(ResourceVector::new(1.0, 400.0, 1024.0), 10.0),
            ],
        }
    }

    #[test]
    fn waste_identity_holds() {
        // A(T) = C(T) + IF + FA for the dimension, when the success is
        // charged its full duration.
        let o = outcome_with_retry();
        o.check().unwrap();
        for kind in ResourceKind::STANDARD {
            let lhs = o.total_allocation(kind);
            let rhs = o.consumption(kind)
                + o.internal_fragmentation(kind)
                + o.failed_allocation_waste(kind);
            assert!((lhs - rhs).abs() < 1e-9, "{kind}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn hand_computed_memory_waste() {
        let o = outcome_with_retry();
        let k = ResourceKind::MemoryMb;
        assert_eq!(o.consumption(k), 3000.0); // 300 × 10
        assert_eq!(o.failed_allocation_waste(k), 400.0); // 100 × 4
        assert_eq!(o.internal_fragmentation(k), 1000.0); // (400−300) × 10
        assert_eq!(o.waste(k), 1400.0);
        assert_eq!(o.total_allocation(k), 4400.0); // 400 + 4000
        assert_eq!(o.failed_attempts(), 1);
    }

    #[test]
    fn perfect_allocation_has_zero_waste() {
        let peak = ResourceVector::new(2.0, 512.0, 306.0);
        let o = TaskOutcome {
            task: TaskId(1),
            category: CategoryId(0),
            peak,
            duration_s: 7.0,
            attempts: vec![AttemptOutcome::success(peak, 7.0)],
        };
        o.check().unwrap();
        for kind in ResourceKind::STANDARD {
            assert_eq!(o.waste(kind), 0.0, "{kind}");
            assert_eq!(o.total_allocation(kind), o.consumption(kind), "{kind}");
        }
    }

    #[test]
    fn check_rejects_malformed_outcomes() {
        let peak = ResourceVector::new(1.0, 100.0, 10.0);
        let good = AttemptOutcome::success(ResourceVector::new(1.0, 128.0, 16.0), 5.0);

        let empty = TaskOutcome {
            task: TaskId(2),
            category: CategoryId(0),
            peak,
            duration_s: 5.0,
            attempts: vec![],
        };
        assert!(empty.check().is_err());

        let failure_last = TaskOutcome {
            attempts: vec![good, AttemptOutcome::failure(peak, 1.0)],
            ..empty.clone()
        };
        assert!(failure_last.check().is_err());

        let double_success = TaskOutcome {
            attempts: vec![good, good],
            ..empty.clone()
        };
        assert!(double_success.check().is_err());

        let under_allocated = TaskOutcome {
            attempts: vec![AttemptOutcome::success(
                ResourceVector::new(1.0, 50.0, 16.0),
                5.0,
            )],
            ..empty
        };
        assert!(under_allocated.check().is_err());
    }
}
