//! Critical-path accounting for structured (DAG) workloads.
//!
//! A flat bag of tasks has one performance axis: how much work there is.
//! A DAG adds a second: how much of it is *serialized*. The longest
//! dependency chain by summed nominal durations is the submit-time critical
//! path — a lower bound on makespan no scheduler can beat — and the gap
//! between it and the chain's realized completion time is the inflation the
//! run actually paid (queueing, allocation errors, retries). Splitting
//! memory waste by on-/off-path membership then shows *where* allocation
//! error hurts: a retry on the critical path pushes the makespan directly,
//! while the same retry off-path is absorbed by float.

use serde::{Deserialize, Serialize};

/// Critical-path summary of one structured run. Attached as an `Option` to
/// `SimStats` and the fault report so flat-workload outputs stay
/// byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CriticalPathStats {
    /// Length of the longest dependency chain at submit time, in nominal
    /// task-seconds (durations only — no queueing, no retries).
    pub longest_path_s: f64,
    /// Number of tasks on that chain.
    pub longest_path_tasks: u32,
    /// When the chain's sink task actually completed, in sim seconds
    /// (falls back to the makespan if it never did).
    pub realized_s: f64,
    /// `realized_s / longest_path_s`: how much the run inflated its
    /// structural lower bound (`0` if the bound is degenerate).
    pub inflation: f64,
    /// Memory waste (MB·s) of completed tasks on the critical path.
    pub on_path_waste_mb_s: f64,
    /// Memory waste (MB·s) of completed tasks off the critical path.
    pub off_path_waste_mb_s: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_serialize_round_trip() {
        let stats = CriticalPathStats {
            longest_path_s: 120.5,
            longest_path_tasks: 14,
            realized_s: 241.0,
            inflation: 2.0,
            on_path_waste_mb_s: 512.0,
            off_path_waste_mb_s: 64.0,
        };
        let json = serde_json::to_string(&stats).expect("serializes");
        let back: CriticalPathStats = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, stats);
    }
}
