#!/usr/bin/env sh
# Repository CI gate. Run from the workspace root:
#
#   ./ci.sh          # format check, lints, tier-1 build + full test suite
#
# Everything is offline-safe: dependencies resolve to the in-tree `compat/`
# crates, so no registry access is needed.

set -eu

echo "== module size guard (no .rs file under crates/ over 900 lines) =="
oversized=$(find crates -name '*.rs' -exec wc -l {} \; | awk '$1 > 900 { print }')
if [ -n "$oversized" ]; then
    echo "modules over the 900-line ceiling (split them, see DESIGN.md §5f):" >&2
    echo "$oversized" >&2
    exit 1
fi

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, all targets, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

echo "== bench harnesses compile =="
cargo build --benches --workspace

echo "== tora bench --quick (hot-path smoke) =="
cargo run --release --bin tora -- bench --quick --out target/bench-smoke.json

echo "== tora chaos --quick (fault-injection smoke) =="
cargo run --release --bin tora -- chaos --quick

echo "== tora chaos --quick --salvage 0.5 (checkpoint/restart smoke) =="
cargo run --release --bin tora -- chaos --quick --salvage 0.5 > target/chaos-salvage.txt
grep -q "salvaged work" target/chaos-salvage.txt

echo "== differential: engine vs analytic replay (byte parity) =="
cargo test -q --test differential

echo "== golden chaos reports (byte-stable across runs) =="
cargo test -q --test golden_chaos

echo "== proptest regression seeds are checked in =="
# A failing property test writes its seed to *.proptest-regressions; that
# seed must be committed so the failure replays everywhere, not just here.
dirty=$(git status --porcelain -- '*.proptest-regressions')
if [ -n "$dirty" ]; then
    echo "uncommitted proptest regression seeds:" >&2
    echo "$dirty" >&2
    exit 1
fi

echo "CI green."
