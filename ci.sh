#!/usr/bin/env sh
# Repository CI gate. Run from the workspace root:
#
#   ./ci.sh          # format check, lints, tier-1 build + full test suite
#
# Everything is offline-safe: dependencies resolve to the in-tree `compat/`
# crates, so no registry access is needed.

set -eu

echo "== module size guard (no .rs file under crates/ over 900 lines) =="
oversized=$(find crates -name '*.rs' -exec wc -l {} \; | awk '$1 > 900 { print }')
if [ -n "$oversized" ]; then
    echo "modules over the 900-line ceiling (split them, see DESIGN.md §5f):" >&2
    echo "$oversized" >&2
    exit 1
fi

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, all targets, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

echo "== tier-1 again with TORA_THREADS=4 (parallel paths, same results) =="
# Thread count is a pure wall-clock knob (DESIGN.md §5h): the whole suite
# must pass identically when the workspace-wide detection is overridden.
TORA_THREADS=4 cargo test -q

echo "== trace byte parity across thread counts =="
# Backfill scheduling batches predictions through the sharded allocator;
# the JSONL event stream must not change with the worker count.
TORA_THREADS=1 cargo run --release --bin tora -- \
    trace colmena-xtb --policy fifo-backfill --out target/trace-t1.jsonl
TORA_THREADS=4 cargo run --release --bin tora -- \
    trace colmena-xtb --policy fifo-backfill --out target/trace-t4.jsonl
cmp target/trace-t1.jsonl target/trace-t4.jsonl

echo "== bench harnesses compile =="
cargo build --benches --workspace

echo "== tora bench --quick (hot-path smoke) =="
cargo run --release --bin tora -- bench --quick --out target/bench-smoke.json

echo "== scaling smoke: 100k streamed tasks above the throughput floor =="
# The quick bench streams 10k and 100k tasks through the engine
# (crates/bench/src/perf.rs::scaling_curve). A superlinear regression in the
# event queue or the arena shows up here as a collapsed tasks/sec figure long
# before the million-task run would. Floor is ~10× below the measured
# release-mode rate to absorb machine noise.
python3 - <<'EOF'
import json
report = json.load(open("target/bench-smoke.json"))
rows = {r["tasks"]: r["tasks_per_sec"] for r in report["scaling"]}
assert 100_000 in rows, f"scaling curve missing the 100k point: {sorted(rows)}"
floor = 20_000.0
if rows[100_000] < floor:
    raise SystemExit(
        f"100k-task streaming throughput {rows[100_000]:.0f} tasks/sec "
        f"is under the {floor:.0f} floor -- engine scaling regressed"
    )
assert report["threads_detected"] >= 1
assert report["threads_used"] >= 1
assert report["matrix"]["identical"], "sequential vs parallel matrix runs differ"
rp = report["rebucket_parallel"]
assert rp, "rebucket_parallel section missing from the bench report"
for row in rp:
    assert row["identical"], f"serial vs sharded rebucket differ at {row['records']}"
sl = report["serve_latency"]
assert sl, "serve_latency section missing from the bench report"
for row in sl:
    assert row["records"] == 10_000, f"serve latency must be measured at 10k records: {row}"
    if row["p99_us"] >= 1000.0:
        raise SystemExit(
            f"serve prediction p99 {row['p99_us']:.1f} us at batch {row['batch']} "
            f"breaks the sub-millisecond budget -- the serve hot path regressed"
        )
fig = report["fig_dag"]
assert fig, "fig_dag section missing from the bench report"
for row in fig:
    assert row["longest_path_s"] > 0.0, f"empty critical path: {row}"
by_algo = {}
for row in fig:
    by_algo.setdefault(row["algorithm"], {})[row["scenario"]] = row
for algo, rows_ in by_algo.items():
    on = rows_["on-path"]["makespan_vs_baseline"]
    off = rows_["off-path"]["makespan_vs_baseline"]
    if not on > off:
        raise SystemExit(
            f"fig_dag: {algo} on-path slowdown {on:.3f} must exceed off-path "
            f"{off:.3f} -- critical-path sensitivity inverted"
        )
learned = report["fig_learned"]
assert learned, "fig_learned section missing from the bench report"
awe = {row["algorithm"]: row["memory_awe"] for row in learned}
assert "greedy-bucketing" in awe and "feature-binned" in awe, sorted(awe)
if not awe["feature-binned"] > awe["greedy-bucketing"]:
    raise SystemExit(
        f"fig_learned: feature-binned memory AWE {awe['feature-binned']:.4f} must "
        f"strictly exceed greedy-bucketing {awe['greedy-bucketing']:.4f} -- "
        f"feature conditioning stopped paying for itself"
    )
print(f"scaling ok: 100k tasks at {rows[100_000]:.0f} tasks/sec "
      f"({report['threads_detected']} detected / {report['threads_used']} used); "
      f"serve p99 " + ", ".join(f"{r['p99_us']:.0f}us@batch{r['batch']}" for r in sl) + "; "
      f"fig_dag on>off-path holds for {len(by_algo)} algorithms; "
      f"fig_learned feature-binned {awe['feature-binned']:.4f} > "
      f"greedy {awe['greedy-bucketing']:.4f}")
EOF

echo "== tora serve smoke (protocol + snapshot/restore byte parity) =="
# A fixed conversation is answered twice (must be byte-identical), then
# replayed across a kill: head of the conversation + Snapshot in one daemon
# life, --restore + tail in a second. The second life's responses must be
# byte-identical to the corresponding tail of the uninterrupted transcript.
mkdir -p target/serve-smoke
head_req=target/serve-smoke/head.jsonl
tail_req=target/serve-smoke/tail.jsonl
cat > "$head_req" <<'EOF'
{"Open":{"tenant":"wf","algorithm":"greedy-bucketing","seed":7}}
{"Workload":{"tenant":"wf","workflow":"bimodal","tasks":12,"seed":3}}
{"Complete":{"tenant":"wf","task":0,"cores":0.9,"memory_mb":480.0,"disk_mb":120.0,"duration_s":6.0}}
{"Complete":{"tenant":"wf","task":1,"cores":1.1,"memory_mb":512.0,"disk_mb":140.0,"duration_s":8.0}}
EOF
cat > "$tail_req" <<'EOF'
{"Fault":{"tenant":"wf","task":2,"kind":"exhaustion","exhausted":["memory"]}}
{"Predict":{"tenant":"wf","categories":[0,1]}}
{"Stats":{}}
{"Shutdown":{}}
EOF
cat "$head_req" "$tail_req" > target/serve-smoke/all.jsonl
serve="cargo run --release --bin tora -- serve --workers 20 --threads 1"
$serve < target/serve-smoke/all.jsonl > target/serve-smoke/ref-a.jsonl
$serve < target/serve-smoke/all.jsonl > target/serve-smoke/ref-b.jsonl
cmp target/serve-smoke/ref-a.jsonl target/serve-smoke/ref-b.jsonl
snap=target/serve-smoke/daemon.json
{ cat "$head_req"; printf '{"Snapshot":{"path":"%s"}}\n' "$snap"; } | $serve > /dev/null
cargo run --release --bin tora -- serve --workers 20 --threads 1 --restore "$snap" \
    < "$tail_req" > target/serve-smoke/resumed.jsonl
tail -n "$(wc -l < "$tail_req")" target/serve-smoke/ref-a.jsonl \
    > target/serve-smoke/ref-tail.jsonl
cmp target/serve-smoke/ref-tail.jsonl target/serve-smoke/resumed.jsonl
echo "serve smoke OK: byte-identical transcripts, kill/restore resumed exactly"

echo "== serve protocol suite (golden transcripts, isolation, restore) =="
cargo test -q --test serve_protocol

echo "== tora chaos --quick (fault-injection smoke) =="
cargo run --release --bin tora -- chaos --quick

echo "== tora chaos --quick --salvage 0.5 (checkpoint/restart smoke) =="
cargo run --release --bin tora -- chaos --quick --salvage 0.5 > target/chaos-salvage.txt
grep -q "salvaged work" target/chaos-salvage.txt

echo "== chaos smoke for the feature-conditioned comparators =="
# The new algorithms must survive heavy faults with the feedback channel
# (per-category windows + rack crash scores) armed, reproducibly — the
# --quick mode runs everything twice and fails on any byte difference.
cargo run --release --bin tora -- chaos --quick --algorithm feature-binned --feedback
cargo run --release --bin tora -- chaos --quick --algorithm semi-bandit --feedback

echo "== chaos DAG smoke (depth-dominated pipeline, critical-path rows) =="
# A generated 40-deep pipeline is pure critical path: the report must carry
# the submit-time and realized critical-path rows with non-zero figures.
cargo run --release --bin tora -- \
    chaos bimodal --shape pipeline --depth 40 --seed 7 --plan light \
    --out target/chaos-dag.json > target/chaos-dag.txt
grep -q "critical path (submit)" target/chaos-dag.txt
grep -q "critical path (realized)" target/chaos-dag.txt
grep -q "waste on / off path" target/chaos-dag.txt
python3 - <<'EOF'
import json
report = json.load(open("target/chaos-dag.json"))
cp = report["critical_path"]
assert cp, "critical_path section missing from the DAG chaos report"
assert cp["longest_path_s"] > 0.0, cp
assert cp["longest_path_tasks"] == 40, cp
assert cp["realized_s"] >= cp["longest_path_s"], cp
assert cp["inflation"] >= 1.0, cp
print(f"chaos DAG ok: 40-task path, submit {cp['longest_path_s']:.0f}s, "
      f"realized {cp['realized_s']:.0f}s ({cp['inflation']:.2f}x)")
EOF

echo "== differential: engine vs analytic replay (byte parity) =="
cargo test -q --test differential

echo "== golden chaos reports (byte-stable across runs) =="
cargo test -q --test golden_chaos

echo "== proptest regression seeds are checked in =="
# A failing property test writes its seed to *.proptest-regressions; that
# seed must be committed so the failure replays everywhere, not just here.
dirty=$(git status --porcelain -- '*.proptest-regressions')
if [ -n "$dirty" ]; then
    echo "uncommitted proptest regression seeds:" >&2
    echo "$dirty" >&2
    exit 1
fi

echo "CI green."
