#!/usr/bin/env sh
# Repository CI gate. Run from the workspace root:
#
#   ./ci.sh          # format check, lints, tier-1 build + full test suite
#
# Everything is offline-safe: dependencies resolve to the in-tree `compat/`
# crates, so no registry access is needed.

set -eu

echo "== module size guard (no .rs file under crates/ over 900 lines) =="
oversized=$(find crates -name '*.rs' -exec wc -l {} \; | awk '$1 > 900 { print }')
if [ -n "$oversized" ]; then
    echo "modules over the 900-line ceiling (split them, see DESIGN.md §5f):" >&2
    echo "$oversized" >&2
    exit 1
fi

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, all targets, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

echo "== tier-1 again with TORA_THREADS=4 (parallel paths, same results) =="
# Thread count is a pure wall-clock knob (DESIGN.md §5h): the whole suite
# must pass identically when the workspace-wide detection is overridden.
TORA_THREADS=4 cargo test -q

echo "== trace byte parity across thread counts =="
# Backfill scheduling batches predictions through the sharded allocator;
# the JSONL event stream must not change with the worker count.
TORA_THREADS=1 cargo run --release --bin tora -- \
    trace colmena-xtb --policy fifo-backfill --out target/trace-t1.jsonl
TORA_THREADS=4 cargo run --release --bin tora -- \
    trace colmena-xtb --policy fifo-backfill --out target/trace-t4.jsonl
cmp target/trace-t1.jsonl target/trace-t4.jsonl

echo "== bench harnesses compile =="
cargo build --benches --workspace

echo "== tora bench --quick (hot-path smoke) =="
cargo run --release --bin tora -- bench --quick --out target/bench-smoke.json

echo "== scaling smoke: 100k streamed tasks above the throughput floor =="
# The quick bench streams 10k and 100k tasks through the engine
# (crates/bench/src/perf.rs::scaling_curve). A superlinear regression in the
# event queue or the arena shows up here as a collapsed tasks/sec figure long
# before the million-task run would. Floor is ~10× below the measured
# release-mode rate to absorb machine noise.
python3 - <<'EOF'
import json
report = json.load(open("target/bench-smoke.json"))
rows = {r["tasks"]: r["tasks_per_sec"] for r in report["scaling"]}
assert 100_000 in rows, f"scaling curve missing the 100k point: {sorted(rows)}"
floor = 20_000.0
if rows[100_000] < floor:
    raise SystemExit(
        f"100k-task streaming throughput {rows[100_000]:.0f} tasks/sec "
        f"is under the {floor:.0f} floor -- engine scaling regressed"
    )
assert report["threads_detected"] >= 1
assert report["threads_used"] >= 1
assert report["matrix"]["identical"], "sequential vs parallel matrix runs differ"
rp = report["rebucket_parallel"]
assert rp, "rebucket_parallel section missing from the bench report"
for row in rp:
    assert row["identical"], f"serial vs sharded rebucket differ at {row['records']}"
print(f"scaling ok: 100k tasks at {rows[100_000]:.0f} tasks/sec "
      f"({report['threads_detected']} detected / {report['threads_used']} used)")
EOF

echo "== tora chaos --quick (fault-injection smoke) =="
cargo run --release --bin tora -- chaos --quick

echo "== tora chaos --quick --salvage 0.5 (checkpoint/restart smoke) =="
cargo run --release --bin tora -- chaos --quick --salvage 0.5 > target/chaos-salvage.txt
grep -q "salvaged work" target/chaos-salvage.txt

echo "== differential: engine vs analytic replay (byte parity) =="
cargo test -q --test differential

echo "== golden chaos reports (byte-stable across runs) =="
cargo test -q --test golden_chaos

echo "== proptest regression seeds are checked in =="
# A failing property test writes its seed to *.proptest-regressions; that
# seed must be committed so the failure replays everywhere, not just here.
dirty=$(git status --porcelain -- '*.proptest-regressions')
if [ -n "$dirty" ]; then
    echo "uncommitted proptest regression seeds:" >&2
    echo "$dirty" >&2
    exit 1
fi

echo "CI green."
