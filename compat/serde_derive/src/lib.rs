//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the in-tree serde
//! compatibility layer (see `compat/serde`).
//!
//! Implemented directly on `proc_macro::TokenStream` — no `syn`/`quote`,
//! because the build must work with an empty registry. Supports the shapes
//! this workspace uses:
//!
//! * structs with named fields (`#[serde(default)]` honoured per field);
//! * tuple structs (newtype and general);
//! * enums with unit, newtype, tuple and struct variants, serialized in
//!   serde's externally-tagged form (`"Variant"` / `{"Variant": ...}`).
//!
//! Generics are not supported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    has_default: bool,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum ItemKind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    kind: ItemKind,
}

type Tokens = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(tt: &TokenTree, s: &str) -> bool {
    matches!(tt, TokenTree::Ident(i) if i.to_string() == s)
}

/// Consume one `#[...]` attribute (the leading `#` was already consumed) and
/// report whether it is a `serde(...)` attribute containing the given flag.
fn attr_has_serde_flag(tokens: &mut Tokens, flag: &str) -> bool {
    let Some(TokenTree::Group(g)) = tokens.next() else {
        panic!("expected [...] after # in attribute");
    };
    let mut inner = g.stream().into_iter();
    match inner.next() {
        Some(ref tt) if is_ident(tt, "serde") => {}
        _ => return false,
    }
    let Some(TokenTree::Group(args)) = inner.next() else {
        return false;
    };
    args.stream().into_iter().any(|tt| is_ident(&tt, flag))
}

/// Skip attributes; returns true if any `#[serde(default)]` was seen.
fn skip_attrs(tokens: &mut Tokens) -> bool {
    let mut has_default = false;
    while matches!(tokens.peek(), Some(tt) if is_punct(tt, '#')) {
        tokens.next();
        if attr_has_serde_flag(tokens, "default") {
            has_default = true;
        }
    }
    has_default
}

fn skip_visibility(tokens: &mut Tokens) {
    if matches!(tokens.peek(), Some(tt) if is_ident(tt, "pub")) {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
}

/// Consume a type (everything up to a top-level `,`), tracking `<...>` depth.
/// Returns false when the stream ended.
fn skip_type(tokens: &mut Tokens) -> bool {
    let mut angle = 0i32;
    let mut seen_any = false;
    while let Some(tt) = tokens.peek() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                tokens.next();
                return true;
            }
            _ => {}
        }
        seen_any = true;
        tokens.next();
    }
    seen_any
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let has_default = skip_attrs(&mut tokens);
        skip_visibility(&mut tokens);
        let Some(tt) = tokens.next() else { break };
        let TokenTree::Ident(name) = tt else {
            panic!("expected field name, found {tt}");
        };
        match tokens.next() {
            Some(ref tt) if is_punct(tt, ':') => {}
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        skip_type(&mut tokens);
        fields.push(Field {
            name: name.to_string(),
            has_default,
        });
    }
    fields
}

/// Count the fields of a tuple-struct/-variant parenthesis group.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut tokens = stream.into_iter().peekable();
    let mut n = 0;
    loop {
        skip_attrs(&mut tokens);
        skip_visibility(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        if !skip_type(&mut tokens) {
            break;
        }
        n += 1;
    }
    n
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs(&mut tokens);
        let Some(tt) = tokens.next() else { break };
        let TokenTree::Ident(name) = tt else {
            panic!("expected variant name, found {tt}");
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantShape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                tokens.next();
                VariantShape::Tuple(n)
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        while let Some(tt) = tokens.peek() {
            if is_punct(tt, ',') {
                tokens.next();
                break;
            }
            tokens.next();
        }
        variants.push(Variant {
            name: name.to_string(),
            shape,
        });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    let is_enum;
    loop {
        skip_attrs(&mut tokens);
        skip_visibility(&mut tokens);
        match tokens.next() {
            Some(ref tt) if is_ident(tt, "struct") => {
                is_enum = false;
                break;
            }
            Some(ref tt) if is_ident(tt, "enum") => {
                is_enum = true;
                break;
            }
            Some(_) => continue,
            None => panic!("derive input contains no struct or enum"),
        }
    }
    let Some(TokenTree::Ident(name)) = tokens.next() else {
        panic!("expected type name after struct/enum");
    };
    let name = name.to_string();
    if matches!(tokens.peek(), Some(tt) if is_punct(tt, '<')) {
        panic!("serde compat derive does not support generic type `{name}`");
    }
    let kind = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if is_enum {
                ItemKind::Enum(parse_variants(g.stream()))
            } else {
                ItemKind::NamedStruct(parse_named_fields(g.stream()))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            ItemKind::TupleStruct(count_tuple_fields(g.stream()))
        }
        Some(ref tt) if is_punct(tt, ';') => ItemKind::UnitStruct,
        other => panic!("unsupported item body for `{name}`: {other:?}"),
    };
    Item { name, kind }
}

// ---------------------------------------------------------------- codegen --

fn named_to_value(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let pairs: String = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{n}\"), ::serde::Serialize::to_value({a})),",
                n = f.name,
                a = access(&f.name)
            )
        })
        .collect();
    format!("::serde::Value::Object(::std::vec![{pairs}])")
}

fn named_from_value(ty: &str, ctor: &str, fields: &[Field], obj: &str) -> String {
    let inits: String = fields
        .iter()
        .map(|f| {
            let missing = if f.has_default {
                "::std::default::Default::default()".to_string()
            } else {
                format!(
                    "return ::std::result::Result::Err(::serde::Error::missing_field(\"{ty}\", \"{n}\"))",
                    n = f.name
                )
            };
            format!(
                "{n}: match ::serde::find_field({obj}, \"{n}\") {{ \
                   ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?, \
                   ::std::option::Option::None => {missing}, }},",
                n = f.name
            )
        })
        .collect();
    format!("{ctor} {{ {inits} }}")
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => named_to_value(fields, |f| format!("&self.{f}")),
        ItemKind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let elems: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{elems}])")
        }
        ItemKind::UnitStruct => "::serde::Value::Null".to_string(),
        ItemKind::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vn}(x0) => ::serde::Value::Object(::std::vec![(\
                               ::std::string::String::from(\"{vn}\"), \
                               ::serde::Serialize::to_value(x0))]),"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let elems: String = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Object(::std::vec![(\
                                   ::std::string::String::from(\"{vn}\"), \
                                   ::serde::Value::Array(::std::vec![{elems}]))]),",
                                binds = binds.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let binds: Vec<&str> =
                                fields.iter().map(|f| f.name.as_str()).collect();
                            let inner = named_to_value(fields, |f| f.to_string());
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(::std::vec![(\
                                   ::std::string::String::from(\"{vn}\"), {inner})]),",
                                binds = binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let build = named_from_value(name, name, fields, "fields");
            format!(
                "let fields = match v {{ \
                   ::serde::Value::Object(m) => m.as_slice(), \
                   _ => return ::std::result::Result::Err(::serde::Error::custom(\
                        \"{name}: expected object\")), }}; \
                 ::std::result::Result::Ok({build})"
            )
        }
        ItemKind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        ItemKind::TupleStruct(n) => {
            let elems: String = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                .collect();
            format!(
                "let items = match v {{ \
                   ::serde::Value::Array(a) if a.len() == {n} => a, \
                   _ => return ::std::result::Result::Err(::serde::Error::custom(\
                        \"{name}: expected {n}-element array\")), }}; \
                 ::std::result::Result::Ok({name}({elems}))"
            )
        }
        ItemKind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        ItemKind::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter(|v| !matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => unreachable!(),
                        VariantShape::Tuple(1) => format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                               ::serde::Deserialize::from_value(inner)?)),"
                        ),
                        VariantShape::Tuple(n) => {
                            let elems: String = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                                .collect();
                            format!(
                                "\"{vn}\" => {{ \
                                   let items = match inner {{ \
                                     ::serde::Value::Array(a) if a.len() == {n} => a, \
                                     _ => return ::std::result::Result::Err(::serde::Error::custom(\
                                          \"{name}::{vn}: expected {n}-element array\")), }}; \
                                   ::std::result::Result::Ok({name}::{vn}({elems})) }},"
                            )
                        }
                        VariantShape::Named(fields) => {
                            let build = named_from_value(
                                &format!("{name}::{vn}"),
                                &format!("{name}::{vn}"),
                                fields,
                                "fields",
                            );
                            format!(
                                "\"{vn}\" => {{ \
                                   let fields = match inner {{ \
                                     ::serde::Value::Object(m) => m.as_slice(), \
                                     _ => return ::std::result::Result::Err(::serde::Error::custom(\
                                          \"{name}::{vn}: expected object\")), }}; \
                                   ::std::result::Result::Ok({build}) }},"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "match v {{ \
                   ::serde::Value::Str(s) => {{ \
                     match s.as_str() {{ {unit_arms} _ => {{}} }} \
                     ::std::result::Result::Err(::serde::Error::unknown_variant(\"{name}\", s)) \
                   }} \
                   ::serde::Value::Object(m) if m.len() == 1 => {{ \
                     let (tag, inner) = &m[0]; \
                     match tag.as_str() {{ \
                       {tagged_arms} \
                       _ => ::std::result::Result::Err(::serde::Error::unknown_variant(\"{name}\", tag)), \
                     }} \
                   }} \
                   _ => ::std::result::Result::Err(::serde::Error::custom(\
                        \"{name}: expected string or single-key object\")), \
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
           fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ \
             {body} \
           }} \
         }}"
    )
}

/// Derive `serde::Serialize` (compat layer).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// Derive `serde::Deserialize` (compat layer).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}
