//! Offline micro-benchmark harness exposing the subset of the `criterion`
//! API this workspace's benches use: `criterion_group!`/`criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter` and `black_box`.
//!
//! Methodology is deliberately simple (no statistics machinery): a warm-up
//! phase sizes the batch, then `sample_size` timed batches are taken and the
//! median per-iteration time is reported on stdout. Good enough to compare
//! two builds by hand, which is all the workspace needs offline.
//!
//! Set `TORA_BENCH_TIME_MS` to change the per-benchmark time budget
//! (default 300 ms, split across samples).

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendered as `name/param`.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl<T: std::fmt::Display> From<T> for BenchmarkId {
    fn from(name: T) -> Self {
        BenchmarkId {
            id: name.to_string(),
        }
    }
}

/// Drives the timing loop of one benchmark.
pub struct Bencher {
    /// Measured median per-iteration time, filled in by `iter`.
    per_iter: Duration,
    budget: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Time the routine, recording the median per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: find an iteration count that takes ≥ ~1/20 of the budget,
        // so the timer overhead stays negligible.
        let mut batch = 1u64;
        let warm_target = self.budget.max(Duration::from_millis(20)) / 20;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let took = start.elapsed();
            if took >= warm_target || batch >= 1 << 20 {
                break;
            }
            batch = if took.is_zero() {
                batch * 8
            } else {
                (batch * 2).max(1)
            };
        }
        let samples = self.sample_size.max(3);
        let mut per_iter: Vec<Duration> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            per_iter.push(start.elapsed() / batch as u32);
        }
        per_iter.sort();
        self.per_iter = per_iter[samples / 2];
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// A named collection of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmark a routine.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            per_iter: Duration::ZERO,
            budget: self.criterion.budget,
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        println!(
            "{group}/{id}  time: [{t}]",
            group = self.name,
            id = id.id,
            t = format_duration(bencher.per_iter)
        );
        self
    }

    /// Benchmark a routine against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (separator line, mirroring criterion's report).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("TORA_BENCH_TIME_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        Criterion {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmark a routine outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declare a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
