//! Offline JSON front-end for the in-tree serde compatibility layer:
//! `to_string`, `to_string_pretty`, `to_value`, `from_value` and `from_str`
//! over [`serde::Value`] trees.
//!
//! Output matches upstream `serde_json` closely enough for the workspace's
//! JSONL logs: objects keep field order, floats print in Rust's shortest
//! round-trip form with a `.0` marker when integral, and parsing floats uses
//! `str::parse::<f64>` (correctly rounded, i.e. `float_roundtrip` behaviour).

#![warn(missing_docs)]

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// `Result` alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to a value tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstruct a typed value from a value tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    T::from_value(value).map_err(Error::from)
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serialize to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parse a typed value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = parse_value(text)?;
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------- printer --

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, f: f64) -> std::result::Result<(), Error> {
    if !f.is_finite() {
        return Err(Error(format!("cannot serialize non-finite float {f}")));
    }
    let s = format!("{f}");
    out.push_str(&s);
    // Keep float-ness visible so the value re-parses as a float.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> std::result::Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(out, *f)?,
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

// ----------------------------------------------------------------- parser --

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> std::result::Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse(&mut self) -> std::result::Result<Value, Error> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'n' => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            b't' => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            b'f' => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            b'"' => self.parse_string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_string(&mut self) -> std::result::Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(self.err("lone surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 character.
                    let text = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = text.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> std::result::Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> std::result::Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(i) = digits.parse::<u64>() {
                    if i <= i64::MAX as u64 {
                        return Ok(Value::Int(-(i as i64)));
                    }
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Parse JSON text into a value tree.
pub fn parse_value(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.parse()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars() {
        for text in ["null", "true", "false", "42", "-17", "\"hi\""] {
            let v: Value = parse_value(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn floats_keep_roundtrip_precision() {
        for f in [0.1, 1.0 / 3.0, 6.02e23, -1e-12, 10.0, f64::MAX] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, f, "{s}");
        }
    }

    #[test]
    fn integral_floats_stay_floats() {
        let s = to_string(&10.0f64).unwrap();
        assert_eq!(s, "10.0");
        assert_eq!(parse_value(&s).unwrap(), Value::Float(10.0));
    }

    #[test]
    fn non_finite_floats_error() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "a\"b\\c\nd\te\u{8}\u{c}\r \u{1} é 💡";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn parses_unicode_escapes_and_surrogates() {
        let v: String = from_str("\"\\u00e9 \\ud83d\\udca1\"").unwrap();
        assert_eq!(v, "é 💡");
    }

    #[test]
    fn object_order_is_preserved() {
        let text = r#"{"b":1,"a":2}"#;
        let v = parse_value(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn pretty_printer_indents() {
        let v = parse_value(r#"{"a":[1,2],"b":{}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {}\n}");
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<Option<(u32, f64)>> = vec![Some((1, 2.5)), None];
        let s = to_string(&v).unwrap();
        let back: Vec<Option<(u32, f64)>> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_malformed_documents() {
        for text in ["{", "[1,", "\"abc", "{\"a\" 1}", "01x", "[1] tail"] {
            assert!(from_str::<Value>(text).is_err(), "{text}");
        }
    }
}
