//! Offline drop-in replacement for the subset of `serde` this workspace
//! uses: the `Serialize`/`Deserialize` derives plus the machinery
//! `serde_json` (compat) needs.
//!
//! Unlike upstream serde there is no zero-copy visitor pipeline — values
//! round-trip through an owned [`Value`] tree. That is plenty for the
//! workflow/event JSONL files this workspace reads and writes, and it keeps
//! the whole layer ~600 lines with no external dependencies (the build must
//! succeed with an empty registry; see DESIGN.md).

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-shaped value tree.
///
/// Objects preserve insertion order (field declaration order for derived
/// types), matching what upstream `serde_json::to_string` emits for structs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer literal.
    UInt(u64),
    /// Negative integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The fields when this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The elements when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view of any integer or float value.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(u) => Some(u as f64),
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Unsigned view of an integer value.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// Signed view of an integer value.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            Value::Int(i) => Some(i),
            _ => None,
        }
    }

    /// The boolean when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| find_field(m, key))
    }
}

/// First value with the given key (derive-generated code calls this).
pub fn find_field<'a>(fields: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An error with a free-form message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// A required field was absent.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error(format!("{ty}: missing field `{field}`"))
    }

    /// An enum tag did not match any variant.
    pub fn unknown_variant(ty: &str, tag: &str) -> Self {
        Error(format!("{ty}: unknown variant `{tag}`"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible to a [`Value`] tree.
pub trait Serialize {
    /// Convert to a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ------------------------------------------------------------- primitives --

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

macro_rules! uint_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::custom(
                    concat!("expected ", stringify!($t))))?;
                <$t>::try_from(u).map_err(|_| Error::custom(
                    concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

uint_impl!(u8, u16, u32, u64, usize);

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::custom(
                    concat!("expected ", stringify!($t))))?;
                <$t>::try_from(i).map_err(|_| Error::custom(
                    concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

int_impl!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64().ok_or_else(|| Error::custom("expected number"))? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::custom("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

// ------------------------------------------------------------- containers --

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?;
        if items.len() != N {
            return Err(Error::custom(format!("expected {N}-element array")));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

macro_rules! tuple_impl {
    ($len:literal; $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v
                    .as_array()
                    .ok_or_else(|| Error::custom("expected array"))?;
                if items.len() != $len {
                    return Err(Error::custom(concat!("expected ", $len, "-tuple")));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    };
}

tuple_impl!(1; A.0);
tuple_impl!(2; A.0, B.1);
tuple_impl!(3; A.0, B.1, C.2);
tuple_impl!(4; A.0, B.1, C.2, D.3);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}
