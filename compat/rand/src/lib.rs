//! Offline drop-in replacement for the subset of the `rand` 0.8 API this
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng` extension methods `gen`, `gen_bool` and `gen_range`.
//!
//! The workspace builds in sandboxed environments with no registry access,
//! so external crates are replaced by in-tree equivalents (see DESIGN.md).
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream's ChaCha12, but the workspace only requires
//! *determinism under a fixed seed*, never a specific stream.

#![warn(missing_docs)]

/// Types that can be sampled uniformly from raw generator output, the
/// stand-in for `Standard: Distribution<T>` bounds upstream.
pub trait FromRng {
    /// Draw one value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl FromRng for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl FromRng for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRng for usize {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw a value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased-enough integer draw in `[0, span)` via 128-bit widening multiply.
fn below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64 + 1;
                // span == 0 only when the range covers the full u64 domain,
                // which the workspace never requests.
                lo + below(rng, span) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, i64);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (self.end - self.start) * f64::from_rng(rng)
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        lo + (hi - lo) * f64::from_rng(rng)
    }
}

/// The subset of `rand::Rng` the workspace calls.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw of a primitive (`f64` in `[0, 1)`, `bool`, integers).
    fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Uniform draw from a range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators; only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic generator (xoshiro256++, SplitMix64-seeded).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(0usize..=4);
            assert!(w <= 4);
        }
        // Every value of a small range is hit.
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn works_through_mut_ref_and_unsized_bounds() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(11);
        let v = draw(&mut rng);
        assert!((0.0..1.0).contains(&v));
        let r = &mut rng;
        let w: f64 = r.gen();
        assert!((0.0..1.0).contains(&w));
    }
}
