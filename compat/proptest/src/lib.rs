//! Offline property-testing harness exposing the subset of the `proptest`
//! API this workspace's tests use: the `proptest!` macro, `prop_assert!`/
//! `prop_assert_eq!`, range and tuple strategies, `prop::collection::vec`,
//! `prop::option::of`, `prop::sample::select`, `prop_oneof!`, `Just`,
//! `any::<bool>()`, `.prop_map(...)` and `ProptestConfig::with_cases`.
//!
//! Differences from upstream: cases are generated from a fixed seed mixed
//! with the case index (fully deterministic across runs), and failing cases
//! are reported but **not shrunk**.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// A failing property observation.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(move |rng: &mut TestRng| self.generate(rng)),
        }
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    #[allow(clippy::type_complexity)]
    inner: std::rc::Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(usize, u64, u32, i64, f64);

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);

/// Types with a canonical `any::<T>()` strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `Vec` of values from `element`, with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy yielding `None` 25% of the time, mirroring upstream.
    pub struct OptionStrategy<S>(S);

    /// `Option` of values from `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Uniform choice from a fixed list.
    pub struct Select<T: Clone>(Vec<T>);

    /// Choose uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }
}

/// Union of same-valued strategies (used by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from pre-boxed strategies.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! requires at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Everything the generated test bodies need.
pub mod test_runner {
    pub use super::{ProptestConfig, TestCaseError};
}

/// Run one property across `config.cases` deterministic cases.
///
/// `gen_args` draws the argument tuple; `body` returns `Err` (via
/// `prop_assert!`) or panics on failure. Used by the `proptest!` macro.
pub fn run_property<A: Clone + std::fmt::Debug>(
    test_name: &str,
    config: &ProptestConfig,
    gen_args: impl Fn(&mut TestRng) -> A,
    body: impl Fn(A) -> Result<(), TestCaseError>,
) {
    // Stable per-test stream: hash the test name into the seed.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    for case in 0..config.cases {
        let mut rng =
            TestRng::seed_from_u64(h ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1)));
        let args = gen_args(&mut rng);
        let shown = format!("{args:?}");
        let cloned = args.clone();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(cloned)));
        match result {
            Ok(Ok(())) => {}
            Ok(Err(e)) => panic!(
                "property `{test_name}` failed at case {case}/{total}: {e}\n  args: {shown}",
                total = config.cases
            ),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("panic");
                panic!(
                    "property `{test_name}` panicked at case {case}/{total}: {msg}\n  args: {shown}",
                    total = config.cases
                )
            }
        }
    }
}

/// Assert inside a property, reporting the failing case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
}

/// Union of strategies, chosen uniformly.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Define property tests, proptest-style.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (@cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_property(
                    stringify!($name),
                    &config,
                    |rng| ($($crate::Strategy::generate(&($strategy), rng),)*),
                    |($($arg,)*)| { $body Ok(()) },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// The prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}
