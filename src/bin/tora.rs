//! `tora` — command-line front end to the allocator, simulator and
//! workload generators.
//!
//! ```text
//! tora algorithms                             list allocation algorithms
//! tora workflows                              list built-in workflows
//! tora generate <workflow> [opts]             emit a workflow trace as JSON
//! tora simulate <workflow|file> [opts]        run the discrete-event engine
//! tora replay   <workflow|file> [opts]        run the fast serial replay
//! tora trace    <workflow|file> [opts]        traced run: allocation events as JSONL
//! tora matrix   [opts]                        the 7×7 AWE matrix (Fig. 5)
//! tora bench    [--quick]                     hot-path performance report → BENCH.json
//! tora serve    [opts]                        long-running allocation daemon (JSONL)
//! ```
//!
//! Run `tora <command> --help` for per-command options. Everything is
//! deterministic in `--seed`.

use std::process::ExitCode;
use tora::cli::{parse_algorithm, parse_sim_config, parse_workflow, Args};
use tora::metrics::{attempts_histogram, pct, rolling_awe, steady_state_onset, Table};
use tora::prelude::*;
use tora::workloads::{io as trace_io, PaperWorkflow};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("algorithms") => cmd_algorithms(),
        Some("workflows") => cmd_workflows(),
        Some("generate") => cmd_generate(&args[1..]),
        Some("simulate") => cmd_run(&args[1..], Mode::Simulate),
        Some("replay") => cmd_run(&args[1..], Mode::Replay),
        Some("trace") => cmd_trace(&args[1..]),
        Some("chaos") => cmd_chaos(&args[1..]),
        Some("matrix") => cmd_matrix(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try --help)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "tora — adaptive task-oriented resource allocation\n\n\
         USAGE:\n  tora <command> [options]\n\n\
         COMMANDS:\n\
           algorithms                      list allocation algorithms\n\
           workflows                       list built-in workflows\n\
           generate <workflow> [opts]      emit a workflow trace as JSON\n\
           simulate <workflow|file> [opts] run the discrete-event engine\n\
           replay   <workflow|file> [opts] run the fast serial replay\n\
           trace    <workflow|file> [opts] traced engine run: allocation decisions as\n\
                                           JSONL plus an engine/allocator reconciliation\n\
           chaos    <workflow|file> [opts] run under a fault-injection plan and print a\n\
                                           fault report (--plan none|light|heavy|crashes|\n\
                                           stragglers|flaky-dispatch|lossy-records|\n\
                                           rack-outages; --feedback arms the allocator's\n\
                                           fault-feedback policy; --salvage <fraction>\n\
                                           banks that fraction of a crashed attempt's\n\
                                           finished work via checkpointing; --quick runs\n\
                                           the determinism smoke test)\n\
           matrix   [opts]                 AWE matrix across workflows × algorithms\n\
           bench    [--quick] [opts]       time the hot paths (prediction, rebucket fast\n\
                                           vs faithful, engine, parallel runner, serve\n\
                                           prediction latency) and write BENCH.json\n\
           serve    [opts]                 long-running allocation daemon speaking\n\
                                           line-delimited JSON on stdin/stdout (default)\n\
                                           or --socket <path> (Unix socket); multiplexes\n\
                                           tenants with per-tenant allocators and DRF\n\
                                           admission; --workers <n> sets the pool size\n\
                                           (default 20 paper-shaped workers); --restore\n\
                                           <snapshot.json> resumes a snapshotted daemon\n\
                                           byte-identically\n\n\
         COMMON OPTIONS:\n\
           --seed <u64>          seed (default 42)\n\
           --algorithm <name>    see `tora algorithms` (default exhaustive-bucketing)\n\
           --tasks <n>           task count for synthetic workflows\n\
           --workers <spec>      fixed:<n> | paper  (default paper)\n\
           --arrival <spec>      batch | poisson:<mean-s>  (default poisson:1.5)\n\
           --policy <name>       fifo | fifo-backfill | smallest-first | largest-first\n\
           --enforcement <name>  ramp | instant  (default ramp)\n\
           --threads <n>         worker threads for the sharded allocator paths\n\
                                 (0 = auto: TORA_THREADS, else the cgroup-aware\n\
                                 core count; results never depend on this)\n\
           --dag                 (topeft) use the Coffea dependency structure\n\
           --shape <name>        generated DAG structure: fan-out-fan-in |\n\
                                 pipeline | diamond | random-layered\n\
           --width <n>           (--shape) parallel width        (default 4)\n\
           --depth <n>           (--shape) layer/chain depth     (default 8)\n\
           --loopback <n>        (--shape) max bounded-cycle iterations per\n\
                                 node (default 0 = acyclic)\n\
           --mix <frac>:<scale>  heterogeneous pool: fraction of large workers\n\
           --out <file>          write JSON output to a file\n\
           --log <file>          (simulate) dump the event log as JSONL\n\
           --convergence         (simulate/replay) print the rolling-AWE trajectory"
    );
}

fn cmd_algorithms() -> Result<(), String> {
    let mut table = Table::new("allocation algorithms", &["name", "kind", "exploration"]);
    let rows: Vec<(AlgorithmKind, &str)> = vec![
        (AlgorithmKind::WholeMachine, "naive baseline"),
        (AlgorithmKind::MaxSeen, "naive baseline"),
        (AlgorithmKind::MinWaste, "Tovar et al. job sizing"),
        (AlgorithmKind::MaxThroughput, "Tovar et al. job sizing"),
        (
            AlgorithmKind::QuantizedBucketing,
            "Phung et al. quantile clustering",
        ),
        (AlgorithmKind::GreedyBucketing, "this paper (Algorithm 1)"),
        (
            AlgorithmKind::ExhaustiveBucketing,
            "this paper (Algorithm 2)",
        ),
        (
            AlgorithmKind::GreedyBucketingIncremental,
            "ablation: fast greedy scan",
        ),
        (
            AlgorithmKind::KMeansBucketing,
            "extension: k-means clustering",
        ),
        (
            AlgorithmKind::FeatureBinned,
            "extension: feature-conditioned bins",
        ),
        (
            AlgorithmKind::SemiBandit,
            "extension: semi-bandit arm selection",
        ),
    ];
    for (alg, kind) in rows {
        table.row(&[
            alg.label(),
            kind,
            if alg.conservative_exploration() {
                "conservative probe"
            } else {
                "whole machine"
            },
        ]);
    }
    print!("{}", table.render());
    Ok(())
}

fn cmd_workflows() -> Result<(), String> {
    let mut table = Table::new(
        "built-in workflows",
        &["name", "tasks", "categories", "kind"],
    );
    for wf in PaperWorkflow::ALL {
        let built = wf.build(42);
        table.row(&[
            wf.name().to_string(),
            built.len().to_string(),
            built.categories.join(", "),
            match wf {
                PaperWorkflow::ColmenaXtb | PaperWorkflow::TopEft => "production trace",
                _ => "synthetic",
            }
            .to_string(),
        ]);
    }
    print!("{}", table.render());
    Ok(())
}

fn cmd_generate(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw)?;
    let name = args
        .positional
        .first()
        .ok_or("generate requires a workflow name")?;
    let wf = parse_workflow(name, &args)?;
    let json = trace_io::to_json(&wf).map_err(|e| e.to_string())?;
    match args.value_of("out")? {
        Some(path) => {
            std::fs::write(path, json).map_err(|e| e.to_string())?;
            eprintln!("wrote {} tasks to {path}", wf.len());
        }
        None => println!("{json}"),
    }
    Ok(())
}

enum Mode {
    Simulate,
    Replay,
}

fn cmd_run(raw: &[String], mode: Mode) -> Result<(), String> {
    let args = Args::parse(raw)?;
    let name = args
        .positional
        .first()
        .ok_or("requires a workflow name or trace file")?;
    let wf = parse_workflow(name, &args)?;
    let algorithm = match args.value_of("algorithm")? {
        None => AlgorithmKind::ExhaustiveBucketing,
        Some(name) => parse_algorithm(name)?,
    };
    let seed = args.seed()?;

    let (metrics, sim_extra) = match mode {
        Mode::Replay => {
            let enforcement = match args.value_of("enforcement")? {
                None | Some("ramp") => EnforcementModel::LinearRamp,
                Some("instant") => EnforcementModel::InstantPeak,
                Some(other) => return Err(format!("unknown --enforcement `{other}`")),
            };
            (replay(&wf, algorithm, enforcement, seed), None)
        }
        Mode::Simulate => {
            let config = parse_sim_config(&args)?;
            let result = simulate(&wf, algorithm, config);
            if let (Some(path), Some(log)) = (args.value_of("log")?, result.log.as_ref()) {
                std::fs::write(path, log.to_jsonl()).map_err(|e| e.to_string())?;
                eprintln!("wrote event log to {path}");
            }
            (result.metrics.clone(), Some(result))
        }
    };

    println!(
        "workflow `{}` × {} (seed {seed}): {} tasks, {} retries",
        wf.name,
        algorithm.label(),
        metrics.len(),
        metrics.total_retries()
    );
    let mut table = Table::new(
        "efficiency",
        &[
            "resource",
            "AWE",
            "consumption",
            "allocation",
            "IF waste",
            "FA waste",
        ],
    );
    for kind in [
        ResourceKind::Cores,
        ResourceKind::MemoryMb,
        ResourceKind::DiskMb,
    ] {
        let w = metrics.waste(kind);
        table.row(&[
            kind.label().to_string(),
            pct(metrics.awe(kind).unwrap_or(0.0)),
            format!("{:.3e}", metrics.total_consumption(kind)),
            format!("{:.3e}", metrics.total_allocation(kind)),
            format!("{:.3e}", w.internal_fragmentation),
            format!("{:.3e}", w.failed_allocation),
        ]);
    }
    print!("{}", table.render());

    let hist = attempts_histogram(&metrics);
    let summary: Vec<String> = hist
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, c)| format!("{}×{}", i + 1, c))
        .collect();
    println!("attempts per task: {}", summary.join("  "));

    if let Some(result) = sim_extra {
        println!(
            "makespan {:.0} s | workers {}..{} | preemptions {}",
            result.makespan_s, result.worker_range.0, result.worker_range.1, result.preemptions
        );
    }

    if args.has("convergence") {
        let window = (wf.len() / 10).max(20);
        println!("\nrolling memory AWE (window {window} tasks):");
        for (task, awe) in rolling_awe(&metrics, ResourceKind::MemoryMb, window) {
            let bar = "#".repeat((awe * 40.0) as usize);
            println!("  task {task:>6}  {:>6}  {bar}", pct(awe));
        }
        match steady_state_onset(&metrics, ResourceKind::MemoryMb, window, 0.05) {
            Some(onset) => println!("steady state from task {onset} (±5% band)"),
            None => println!("no steady state detected"),
        }
    }
    Ok(())
}

/// `tora trace`: run the engine with a live event sink attached, dump the
/// allocator's decision stream as JSONL, and cross-check the stream's counts
/// against the engine's own bookkeeping. A mismatch is a bug in one of the
/// two bookkeepers, so it fails the command.
fn cmd_trace(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw)?;
    let name = args
        .positional
        .first()
        .ok_or("trace requires a workflow name or trace file")?;
    let wf = parse_workflow(name, &args)?;
    let algorithm = match args.value_of("algorithm")? {
        None => AlgorithmKind::ExhaustiveBucketing,
        Some(name) => parse_algorithm(name)?,
    };
    let seed = args.seed()?;
    let config = parse_sim_config(&args)?;

    // Count and serialize in one pass: a pair of sinks sees every event.
    let sink = (TraceStats::new(), JsonlSink::new(Vec::<u8>::new()));
    let (result, (trace, jsonl)) = Simulation::new(&wf, algorithm, config)
        .with_sink(sink)
        .run_traced();
    if jsonl.errors() > 0 {
        return Err(format!("{} events failed to serialize", jsonl.errors()));
    }
    let events_written = jsonl.written();
    let bytes = jsonl.into_inner();

    // Events go to --out or stdout; the summary goes to the other stream so
    // `tora trace ... | jq` stays clean.
    let events_on_stdout = match args.value_of("out")? {
        Some(path) => {
            std::fs::write(path, &bytes).map_err(|e| e.to_string())?;
            eprintln!("wrote {events_written} events to {path}");
            false
        }
        None => {
            use std::io::Write as _;
            std::io::stdout()
                .write_all(&bytes)
                .map_err(|e| e.to_string())?;
            true
        }
    };
    let emit = |s: String| {
        if events_on_stdout {
            eprintln!("{s}");
        } else {
            println!("{s}");
        }
    };

    emit(format!(
        "workflow `{}` × {} (seed {seed}): {events_written} events, {} tasks, {} retries",
        wf.name,
        algorithm.label(),
        result.metrics.len(),
        result.metrics.total_retries()
    ));
    let mut table = Table::new(
        "allocation events by category",
        &[
            "category", "explore", "first", "retry", "escalate", "rebucket", "observe",
        ],
    );
    let mut categories: Vec<u32> = trace.by_category.iter().map(|(id, _)| *id).collect();
    categories.sort_unstable();
    let tally_row = |label: String, t: &tora::alloc::trace::Tally| {
        [
            label,
            t.explore.to_string(),
            t.first.to_string(),
            t.retry.to_string(),
            t.escalate.to_string(),
            t.rebucket.to_string(),
            t.observe.to_string(),
        ]
    };
    for id in categories {
        let t = trace.category(CategoryId(id)).copied().unwrap_or_default();
        table.row(&tally_row(id.to_string(), &t));
    }
    table.row(&tally_row("all".into(), &trace.overall));
    emit(table.render().trim_end().to_string());
    emit(format!(
        "engine: {} dispatches | {} completions | {} kills | {} preemptions | makespan {:.0} s",
        result.stats.dispatches,
        result.stats.completions,
        result.stats.failures,
        result.stats.preemptions,
        result.makespan_s
    ));

    match result.stats.reconcile(&trace) {
        Ok(()) => {
            emit(format!(
                "reconciliation OK: {} predictions, {} retries, {} escalations and {} \
                 observations agree with the engine's tally",
                trace.overall.predictions_first(),
                trace.overall.retry,
                trace.overall.escalate,
                trace.overall.observe
            ));
            Ok(())
        }
        Err(mismatches) => {
            for m in &mismatches {
                eprintln!("reconciliation mismatch: {m}");
            }
            Err(format!(
                "engine/trace reconciliation failed ({} mismatches)",
                mismatches.len()
            ))
        }
    }
}

/// `tora chaos`: run a workload under a named fault-injection plan and
/// print a [`FaultReport`] — per-cause fault counts, the dead-letter
/// breakdown (including replays), degraded AWE, and the conservation
/// identity `submitted = completed + dead-lettered`. The command fails if
/// conservation is violated. `--feedback` arms the allocator's
/// fault-feedback policy so predictions pad/escalate with the observed
/// fault rate. `--salvage <fraction>` enables checkpoint/restart: a crashed
/// attempt banks that fraction of its finished work and the retry runs only
/// the remainder, with the salvage totals shown in the report. `--quick` is
/// the CI smoke mode: a small fixed workload is run twice under the same
/// seed and the two reports must be byte-identical.
fn cmd_chaos(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw)?;
    let plan_name = args.value_of("plan")?.unwrap_or("light");
    let plan = FaultPlan::named(plan_name).ok_or_else(|| {
        format!(
            "unknown --plan `{plan_name}` (one of: {})",
            FaultPlan::PRESETS.join(", ")
        )
    })?;
    let algorithm = match args.value_of("algorithm")? {
        None => AlgorithmKind::ExhaustiveBucketing,
        Some(name) => parse_algorithm(name)?,
    };
    let fault_policy = args.has("feedback").then(FaultPolicy::default);
    let salvage = args.salvage()?;

    if args.has("quick") {
        // Fixed seed, fixed workload: the report must be reproducible down
        // to the byte, and the books must balance.
        let wf = PaperWorkflow::Bimodal
            .spec(7)
            .tasks(120)
            .materialize()
            .unwrap();
        let mut config = SimConfig::paper_like(7);
        config.fault_policy = fault_policy;
        config.faults = if args.has("plan") {
            plan
        } else {
            FaultPlan::named("heavy").expect("preset")
        };
        if let Some(fraction) = salvage {
            config.faults.checkpointed_fraction = fraction;
        }
        let run = || {
            let result = simulate(&wf, algorithm, config);
            FaultReport::from_result(&result, &config, algorithm.label())
        };
        let a = run();
        let b = run();
        if a.to_json() != b.to_json() {
            return Err("chaos smoke: same-seed reports differ".into());
        }
        if !a.conservation_ok {
            return Err(format!(
                "chaos smoke: conservation violated ({} submitted, {} completed, {} dead-lettered)",
                a.submitted, a.completed, a.dead_lettered
            ));
        }
        print!("{}", a.render());
        println!(
            "chaos smoke OK: byte-identical report across two runs, {} submitted = {} completed + {} dead-lettered",
            a.submitted, a.completed, a.dead_lettered
        );
        return Ok(());
    }

    let name = args
        .positional
        .first()
        .ok_or("chaos requires a workflow name or trace file (or --quick)")?;
    let wf = parse_workflow(name, &args)?;
    let mut config = parse_sim_config(&args)?;
    config.faults = plan;
    if let Some(fraction) = salvage {
        config.faults.checkpointed_fraction = fraction;
    }
    config.fault_policy = fault_policy;
    let result = simulate(&wf, algorithm, config);
    let report = FaultReport::from_result(&result, &config, algorithm.label());
    print!("{}", report.render());
    if let Some(path) = args.value_of("out")? {
        std::fs::write(path, report.to_json()).map_err(|e| e.to_string())?;
        eprintln!("wrote fault report to {path}");
    }
    if !report.conservation_ok {
        return Err(format!(
            "conservation violated: {} submitted, {} completed, {} dead-lettered",
            report.submitted, report.completed, report.dead_lettered
        ));
    }
    Ok(())
}

/// `tora bench`: measure the hot paths and write `BENCH.json`.
///
/// `--quick` shrinks iteration counts and the matrix to a CI-friendly smoke
/// run; `--out` redirects the JSON report (default `BENCH.json`).
fn cmd_bench(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw)?;
    let seed = args.seed()?;
    let quick = args.has("quick");
    let out = args.value_of("out")?.unwrap_or("BENCH.json");
    eprintln!(
        "benchmarking hot paths (seed {seed}{})...",
        if quick { ", quick" } else { "" }
    );
    let report = tora_bench::run_bench_on(quick, seed, args.threads()?);
    print!("{}", report.render());
    let json = report.to_json().map_err(|e| e.to_string())?;
    std::fs::write(out, json).map_err(|e| e.to_string())?;
    println!("wrote {out}");
    Ok(())
}

/// `tora serve`: the long-running allocation daemon. Speaks the
/// line-delimited JSON protocol of `tora::serve::protocol` on stdin/stdout
/// by default, or serves connections sequentially on a Unix socket with
/// `--socket <path>`. `--workers <n>` sizes the shared pool in §V-A-shaped
/// workers; `--restore <snapshot.json>` resumes a daemon snapshotted with
/// the `Snapshot` request, byte-identically. `--threads` tunes the sharded
/// prediction paths and never changes any answer.
fn cmd_serve(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw)?;
    let workers = match args.value_of("workers")? {
        None => 20,
        Some(v) => v
            .parse()
            .ok()
            .filter(|n: &usize| *n >= 1)
            .ok_or_else(|| format!("bad --workers `{v}` (a worker count ≥ 1)"))?,
    };
    let config = tora::serve::ServeConfig {
        workers,
        threads: args.threads()?,
    };
    let mut session = match args.value_of("restore")? {
        Some(path) => {
            let json = std::fs::read_to_string(path)
                .map_err(|e| format!("reading snapshot `{path}`: {e}"))?;
            let session = tora::serve::Session::restore(&config, &json)?;
            eprintln!("restored daemon state from {path}");
            session
        }
        None => tora::serve::Session::new(&config),
    };
    match args.value_of("socket")? {
        #[cfg(unix)]
        Some(path) => {
            eprintln!("serving on unix socket {path} ({workers} workers)");
            session
                .serve_unix(std::path::Path::new(path))
                .map_err(|e| e.to_string())
        }
        #[cfg(not(unix))]
        Some(_) => Err("--socket requires a Unix platform".into()),
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            session
                .serve(stdin.lock(), stdout.lock())
                .map(|_| ())
                .map_err(|e| e.to_string())
        }
    }
}

fn cmd_matrix(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw)?;
    let seed = args.seed()?;
    let algorithms: Vec<AlgorithmKind> = match args.value_of("algorithm")? {
        Some(name) => vec![parse_algorithm(name)?],
        None => AlgorithmKind::PAPER_SET.to_vec(),
    };
    let mut headers = vec!["algorithm"];
    headers.extend(PaperWorkflow::ALL.iter().map(|w| w.name()));
    let mut table = Table::new(format!("memory AWE matrix (seed {seed})"), &headers);
    for alg in &algorithms {
        let mut row = vec![alg.label().to_string()];
        for wf in PaperWorkflow::ALL {
            let built = wf.build(seed);
            let result = simulate(&built, alg.fast_equivalent(), SimConfig::paper_like(seed));
            row.push(pct(result
                .metrics
                .awe(ResourceKind::MemoryMb)
                .unwrap_or(0.0)));
        }
        table.push_row(row);
        eprint!(".");
    }
    eprintln!();
    print!("{}", table.render());
    Ok(())
}
