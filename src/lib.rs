//! # tora — Task-Oriented Resource Allocation for dynamic workflows
//!
//! A full Rust reproduction of *"Adaptive Task-Oriented Resource Allocation
//! for Large Dynamic Workflows on Opportunistic Resources"* (Phung & Thain,
//! IPDPS 2024). This facade crate re-exports the workspace:
//!
//! * [`alloc`] — the paper's contribution: Greedy/Exhaustive Bucketing, the
//!   five comparator algorithms, and the adaptive allocator around them;
//! * [`sim`] — the dynamic-workflow execution substrate: a discrete-event
//!   engine with opportunistic worker churn, plus a fast serial replay;
//! * [`workloads`] — the seven evaluation workflows (five synthetic
//!   distributions, ColmenaXTB- and TopEFT-shaped production traces);
//! * [`metrics`] — resource-waste and Absolute-Workflow-Efficiency
//!   accounting.
//!
//! ## Quick start
//!
//! ```
//! use tora::prelude::*;
//!
//! // A 200-task workflow whose memory follows a bimodal distribution.
//! let workflow = PaperWorkflow::Bimodal.spec(7).tasks(200).materialize().unwrap();
//!
//! // Execute it on an opportunistic pool, allocating with Exhaustive
//! // Bucketing.
//! let result = simulate(
//!     &workflow,
//!     AlgorithmKind::ExhaustiveBucketing,
//!     SimConfig::default(),
//! );
//!
//! let awe = result.metrics.awe(ResourceKind::MemoryMb).unwrap();
//! assert!(awe > 0.3, "memory efficiency {awe}");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cli;
pub mod serve;

pub use tora_alloc as alloc;
pub use tora_metrics as metrics;
pub use tora_sim as sim;
pub use tora_workloads as workloads;

/// The names most programs need.
pub mod prelude {
    pub use tora_alloc::allocator::{
        AlgorithmKind, AllocationDecision, Allocator, AllocatorBuilder, AllocatorConfig,
        ExploratoryPolicy,
    };
    pub use tora_alloc::feedback::{AttemptFeedback, FaultPolicy, FeedbackWindow};
    pub use tora_alloc::resources::{ResourceKind, ResourceMask, ResourceVector, WorkerSpec};
    pub use tora_alloc::task::{
        CategoryId, ResourceRecord, TaskContext, TaskFeatures, TaskId, TaskSpec,
    };
    pub use tora_alloc::trace::{
        AllocEvent, AxisProvenance, EventSink, JsonlSink, MemorySink, NoopSink, PredictKind,
        TraceStats,
    };
    pub use tora_metrics::{
        AttemptCause, AttemptOutcome, CriticalPathStats, DeadLetter, DeadLetterCause, TaskOutcome,
        WasteAttribution, WasteBreakdown, WorkflowMetrics,
    };
    pub use tora_sim::{
        replay, simulate, ArrivalModel, ChurnConfig, Driver, EnforcementModel, EventLog,
        FaultCounts, FaultPlan, FaultReport, IllegalTransition, QueuePolicy, SimConfig, SimEvent,
        SimResult, SimStats, Simulation, SubmitApi, TaskPhase, UtilizationSeries, WorkerMix,
    };
    pub use tora_workloads::{
        DagShape, PaperWorkflow, SyntheticKind, TaskSource, Workflow, WorkloadSpec,
    };
}
