//! The `tora serve` wire protocol: line-delimited JSON requests and
//! responses.
//!
//! One request object per line in, exactly one response object per line out,
//! in request order — the protocol is strictly synchronous, so a transcript
//! is a deterministic function of the request stream and the daemon's
//! initial state. Both sides use serde's externally-tagged enum encoding:
//! `{"Submit":{"tenant":"wf-a","task":0,"category":1}}`.
//!
//! Admission decisions triggered by a request (a completion freeing
//! capacity, a submission fitting immediately) ride inline in that request's
//! response as [`Grant`]s — there are no unsolicited server lines, which
//! keeps golden-transcript testing and `nc`-style manual driving trivial.
//!
//! Resource vectors cross the wire as flat named fields ([`WireVector`])
//! rather than the internal array encoding, so clients never depend on the
//! engine's axis ordering.

use crate::prelude::*;
use serde::{Deserialize, Serialize};

/// A resource vector in wire form: explicit named axes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WireVector {
    /// CPU cores.
    pub cores: f64,
    /// Memory in MB.
    pub memory_mb: f64,
    /// Disk in MB.
    pub disk_mb: f64,
    /// Wall time in seconds (the allocation 4-tuple's `t_a`).
    pub time_s: f64,
}

impl From<ResourceVector> for WireVector {
    fn from(v: ResourceVector) -> Self {
        WireVector {
            cores: v.cores(),
            memory_mb: v.memory_mb(),
            disk_mb: v.disk_mb(),
            time_s: v[ResourceKind::TimeS],
        }
    }
}

impl From<WireVector> for ResourceVector {
    fn from(w: WireVector) -> Self {
        ResourceVector::new(w.cores, w.memory_mb, w.disk_mb).with(ResourceKind::TimeS, w.time_s)
    }
}

/// One admitted task: the daemon has booked `alloc` of pool capacity for it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grant {
    /// The tenant the task belongs to.
    pub tenant: String,
    /// The task id (unique within the tenant).
    pub task: u64,
    /// The booked allocation.
    pub alloc: WireVector,
}

/// One first-attempt prediction, as returned by [`Request::Predict`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// The requested category.
    pub category: u32,
    /// Which prediction path answered (`explore`, `first`, `retry`).
    pub kind: String,
    /// The predicted allocation.
    pub alloc: WireVector,
}

/// Per-tenant line of a [`Response::StatsReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantStatus {
    /// Tenant name.
    pub tenant: String,
    /// Dominant-resource share of pool capacity currently booked.
    pub share: f64,
    /// Tasks currently granted (running).
    pub running: u64,
    /// Tasks waiting for admission.
    pub queued: u64,
    /// Completions observed.
    pub completed: u64,
    /// Faults observed.
    pub faults: u64,
    /// Journaled allocator operations.
    pub ops: u64,
}

/// A client request: one externally-tagged JSON object per line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Register a tenant with its own freshly built allocator.
    Open {
        /// Tenant name (unique while open).
        tenant: String,
        /// Algorithm label (see `tora algorithms`); empty picks
        /// `exhaustive-bucketing`.
        #[serde(default)]
        algorithm: String,
        /// Allocator RNG seed.
        #[serde(default)]
        seed: u64,
    },
    /// Submit one task: predict its first allocation and queue it for
    /// admission.
    Submit {
        /// Owning tenant.
        tenant: String,
        /// Task id, unique within the tenant.
        task: u64,
        /// Task category (function id).
        category: u32,
        /// Optional pre-run input-size signal in `[0, 1]` for
        /// feature-conditioned algorithms; omitting it (0) is exactly the
        /// pre-feature protocol.
        #[serde(default)]
        input_signal: f64,
        /// Optional DAG depth of the task.
        #[serde(default)]
        depth: u32,
    },
    /// Submit every task of a built-in workflow in one batch.
    Workload {
        /// Owning tenant.
        tenant: String,
        /// Built-in workflow name (see `tora workflows`).
        workflow: String,
        /// Task count for synthetic workflows; 0 keeps the default size.
        #[serde(default)]
        tasks: usize,
        /// Workflow generation seed.
        #[serde(default)]
        seed: u64,
    },
    /// Report a running task's successful completion and its measured peak.
    Complete {
        /// Owning tenant.
        tenant: String,
        /// The completed task.
        task: u64,
        /// Measured peak cores.
        cores: f64,
        /// Measured peak memory in MB.
        memory_mb: f64,
        /// Measured peak disk in MB.
        disk_mb: f64,
        /// Measured execution time in seconds.
        duration_s: f64,
    },
    /// Report a running task's failed attempt.
    Fault {
        /// Owning tenant.
        tenant: String,
        /// The failed task.
        task: u64,
        /// Failure kind: `crash`, `straggler` or `exhaustion`.
        kind: String,
        /// For `exhaustion`: the exceeded axis labels (`cores`, `memory`,
        /// `disk`, `gpus`, `time`).
        #[serde(default)]
        exhausted: Vec<String>,
    },
    /// Advisory first-attempt predictions for a batch of categories.
    /// Consumes RNG draws exactly like a submission would.
    Predict {
        /// Owning tenant.
        tenant: String,
        /// Categories to predict for, in order.
        categories: Vec<u32>,
    },
    /// Force a full rebucket sweep of the tenant's estimators.
    Rebucket {
        /// Owning tenant.
        tenant: String,
    },
    /// Pool and per-tenant status.
    Stats {},
    /// Persist the daemon's full state to a JSON snapshot file.
    Snapshot {
        /// Destination path.
        path: String,
    },
    /// Deregister a tenant, releasing its grants and queue.
    Close {
        /// The tenant to close.
        tenant: String,
    },
    /// Stop the daemon after responding.
    Shutdown {},
}

/// A daemon response: exactly one per request, in request order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// [`Request::Open`] succeeded.
    Opened {
        /// The registered tenant.
        tenant: String,
    },
    /// [`Request::Submit`] / [`Request::Workload`] succeeded.
    Submitted {
        /// The owning tenant.
        tenant: String,
        /// Tasks accepted by this request.
        accepted: u64,
        /// Tasks admitted immediately (any tenant — admission is global).
        granted: Vec<Grant>,
        /// The tenant's queue depth after admission.
        queued: u64,
    },
    /// [`Request::Complete`] succeeded.
    Completed {
        /// The owning tenant.
        tenant: String,
        /// The completed task.
        task: u64,
        /// Tasks admitted into the freed capacity (any tenant).
        admitted: Vec<Grant>,
    },
    /// [`Request::Fault`] succeeded: the attempt was recorded and the task
    /// re-queued (or abandoned, if retrying cannot help).
    Retried {
        /// The owning tenant.
        tenant: String,
        /// The failed task.
        task: u64,
        /// The next attempt's allocation; `None` when the task was
        /// abandoned as infeasible.
        alloc: Option<WireVector>,
        /// Whether the retry is still waiting for admission.
        queued: bool,
        /// True when no exhausted axis could be raised (the task does not
        /// fit the machine); the task is dropped, not retried.
        infeasible: bool,
        /// Tasks admitted after the fault released capacity (any tenant).
        admitted: Vec<Grant>,
    },
    /// [`Request::Predict`] succeeded.
    Predictions {
        /// The owning tenant.
        tenant: String,
        /// One prediction per requested category, in request order.
        predictions: Vec<Prediction>,
    },
    /// [`Request::Rebucket`] succeeded.
    Rebucketed {
        /// The owning tenant.
        tenant: String,
        /// `(category, axis)` estimator pairs that produced a new
        /// bucketing configuration.
        changed: u64,
    },
    /// [`Request::Stats`] report.
    StatsReport {
        /// Pool worker count.
        workers: u64,
        /// Aggregate pool capacity.
        capacity: WireVector,
        /// Currently booked capacity.
        used: WireVector,
        /// Per-tenant status, in tenant creation order.
        tenants: Vec<TenantStatus>,
    },
    /// [`Request::Snapshot`] succeeded.
    Snapshotted {
        /// Where the snapshot was written.
        path: String,
        /// Number of tenants captured.
        tenants: u64,
    },
    /// [`Request::Close`] succeeded.
    Closed {
        /// The closed tenant.
        tenant: String,
        /// Tasks (running + queued) the close released.
        released: u64,
        /// Tasks admitted into the released capacity (remaining tenants).
        admitted: Vec<Grant>,
    },
    /// The request failed; daemon state is unchanged.
    Error {
        /// Stable machine-readable code (see the module docs in
        /// [`crate::serve`]).
        code: String,
        /// Human-readable detail.
        message: String,
    },
    /// [`Request::Shutdown`] acknowledged; the daemon exits after this line.
    Bye {},
}

impl Response {
    /// Build an [`Response::Error`].
    pub fn error(code: &str, message: impl Into<String>) -> Self {
        Response::Error {
            code: code.to_string(),
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_json() {
        let requests = vec![
            Request::Open {
                tenant: "a".into(),
                algorithm: "greedy-bucketing".into(),
                seed: 7,
            },
            Request::Submit {
                tenant: "a".into(),
                task: 3,
                category: 1,
                input_signal: 0.4,
                depth: 2,
            },
            Request::Fault {
                tenant: "a".into(),
                task: 3,
                kind: "exhaustion".into(),
                exhausted: vec!["memory".into()],
            },
            Request::Stats {},
            Request::Shutdown {},
        ];
        for req in requests {
            let json = serde_json::to_string(&req).unwrap();
            let back: Request = serde_json::from_str(&json).unwrap();
            assert_eq!(back, req, "{json}");
        }
    }

    #[test]
    fn defaulted_fields_may_be_omitted() {
        let req: Request =
            serde_json::from_str(r#"{"Open":{"tenant":"a"}}"#).expect("defaults fill in");
        assert_eq!(
            req,
            Request::Open {
                tenant: "a".into(),
                algorithm: String::new(),
                seed: 0,
            }
        );
        // Pre-feature submit lines keep parsing: the feature fields default.
        let req: Request =
            serde_json::from_str(r#"{"Submit":{"tenant":"a","task":1,"category":0}}"#)
                .expect("feature fields default");
        assert_eq!(
            req,
            Request::Submit {
                tenant: "a".into(),
                task: 1,
                category: 0,
                input_signal: 0.0,
                depth: 0,
            }
        );
    }

    #[test]
    fn wire_vector_round_trips_the_time_axis() {
        let v = ResourceVector::new(2.0, 1024.0, 512.0).with(ResourceKind::TimeS, 60.0);
        let w = WireVector::from(v);
        assert_eq!(w.time_s, 60.0);
        assert_eq!(ResourceVector::from(w), v);
    }
}
