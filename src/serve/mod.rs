//! `tora serve` — a long-running allocation daemon.
//!
//! The simulator answers "what would this allocator have done"; `serve`
//! answers "what should my workflow do *now*". A workflow manager (or
//! several — tenants are multiplexed) connects over stdin/stdout or a Unix
//! socket, registers as a tenant, and drives the paper's allocation loop
//! interactively: submit tasks, receive predicted allocations and admission
//! grants, report completions and faults, and ask for advisory predictions
//! — all over line-delimited JSON with exactly one response line per
//! request line (see [`protocol`]).
//!
//! ## Architecture (DESIGN.md §5i)
//!
//! * [`protocol`] — the wire types. Externally-tagged request/response
//!   enums; resource vectors cross the wire as named axes.
//! * [`tenant`] (private) — per-tenant allocator state (each tenant owns an
//!   [`Allocator`](crate::prelude::Allocator), journal and task books) and
//!   the dominant-resource-fair admission policy that arbitrates the shared
//!   pool between tenants.
//! * [`session`] — the transport-agnostic request loop.
//! * [`snapshot`] — kill-safe persistence: a snapshot stores each tenant's
//!   replayable input journal (`tora_alloc::oplog`) instead of opaque
//!   allocator internals, and a restored daemon resumes byte-identically.
//!
//! ## Error codes
//!
//! [`protocol::Response::Error`] carries a stable machine-readable `code`:
//!
//! | code | meaning |
//! |------|---------|
//! | `bad-request` | unparseable line, or a field failed validation |
//! | `unknown-tenant` | no open tenant by that name |
//! | `duplicate-tenant` | `Open` for a name already open |
//! | `unknown-task` / `task-not-running` | the task is not currently granted |
//! | `duplicate-task` | a task id was submitted twice to one tenant |
//! | `unknown-algorithm` | `Open.algorithm` is not a known label |
//! | `unknown-workflow` | `Workload.workflow` is not a built-in |
//! | `bad-fault-kind` | `Fault.kind` is not crash/straggler/exhaustion |
//! | `io` | a snapshot could not be serialized or written |
//!
//! Workload materialization failures pass through the stable
//! [`WorkloadError`](crate::workloads::WorkloadError) codes
//! (`category-arity`, `invalid-trace`, …) unchanged.

pub mod protocol;
pub mod session;
pub mod snapshot;
mod tenant;

pub use protocol::{Grant, Prediction, Request, Response, WireVector};
pub use session::Session;
pub use snapshot::ServeSnapshot;

/// Daemon configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Pool size in §V-A-shaped workers (16 cores / 64 GB / 64 GB each);
    /// admission books against the aggregate capacity.
    pub workers: usize,
    /// Worker threads for the sharded allocator paths; `0` auto-detects.
    /// Thread count never changes any answer — only how fast it arrives.
    pub threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 20,
            threads: 0,
        }
    }
}
