//! The request loop: parse a line, mutate the registry, answer a line.
//!
//! [`Session`] is transport-agnostic — it consumes any `BufRead` and writes
//! any `Write`, so the same code serves stdin/stdout, a Unix socket
//! connection, or an in-process `Vec<u8>` in tests. One request line
//! produces exactly one response line; a request that fails validation
//! produces an [`Response::Error`] and leaves daemon state untouched
//! (validation runs before the first journaled operation).

use crate::prelude::*;
use crate::workloads::PaperWorkflow;
use tora_alloc::oplog::AllocOp;

use std::io::{BufRead, Write};

use super::protocol::{Prediction, Request, Response, TenantStatus};
use super::snapshot::ServeSnapshot;
use super::tenant::{algorithm_or_default, AppliedOp, Registry, TaskBooking, Tenant};
use super::ServeConfig;

/// A live daemon: the tenant registry plus the request dispatcher.
pub struct Session {
    registry: Registry,
}

impl Session {
    /// A fresh daemon with no tenants.
    pub fn new(config: &ServeConfig) -> Self {
        Session {
            registry: Registry::new(config),
        }
    }

    /// Rebuild a daemon from a snapshot produced by [`Request::Snapshot`].
    /// The restored daemon answers any subsequent request stream exactly as
    /// the snapshotted daemon would have.
    pub fn restore(config: &ServeConfig, snapshot_json: &str) -> Result<Self, String> {
        let snapshot = ServeSnapshot::from_json(snapshot_json)?;
        Ok(Session {
            registry: snapshot.restore(config)?,
        })
    }

    /// The daemon's current state in snapshot form.
    pub fn snapshot_json(&self) -> Result<String, String> {
        ServeSnapshot::capture(&self.registry).to_json()
    }

    /// Parse and dispatch one request line. Returns the response and
    /// whether the request asked the daemon to stop.
    pub fn handle_line(&mut self, line: &str) -> (Response, bool) {
        match serde_json::from_str::<Request>(line) {
            Ok(request) => {
                let shutdown = matches!(request, Request::Shutdown {});
                (self.handle(request), shutdown)
            }
            Err(e) => (
                Response::error("bad-request", format!("unparseable request: {e}")),
                false,
            ),
        }
    }

    /// Serve an entire connection: one response line per request line.
    /// Returns whether a `Shutdown` was seen (the connection ending without
    /// one leaves the daemon ready for the next connection).
    pub fn serve<R: BufRead, W: Write>(
        &mut self,
        reader: R,
        mut writer: W,
    ) -> std::io::Result<bool> {
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let (response, shutdown) = self.handle_line(&line);
            let json = serde_json::to_string(&response)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
            writeln!(writer, "{json}")?;
            writer.flush()?;
            if shutdown {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Bind a Unix socket and serve connections sequentially (the registry
    /// is shared across connections) until a `Shutdown` arrives. The socket
    /// file is removed on exit.
    #[cfg(unix)]
    pub fn serve_unix(&mut self, path: &std::path::Path) -> std::io::Result<()> {
        use std::os::unix::net::UnixListener;
        let listener = UnixListener::bind(path)?;
        loop {
            let (stream, _) = listener.accept()?;
            let reader = std::io::BufReader::new(stream.try_clone()?);
            if self.serve(reader, &stream)? {
                break;
            }
        }
        let _ = std::fs::remove_file(path);
        Ok(())
    }

    /// Dispatch one parsed request.
    pub fn handle(&mut self, request: Request) -> Response {
        match request {
            Request::Open {
                tenant,
                algorithm,
                seed,
            } => self.open(tenant, &algorithm, seed),
            Request::Submit {
                tenant,
                task,
                category,
                input_signal,
                depth,
            } => self.submit(
                &tenant,
                task,
                category,
                TaskFeatures::with_input_signal(input_signal).at_depth(depth),
            ),
            Request::Workload {
                tenant,
                workflow,
                tasks,
                seed,
            } => self.workload(&tenant, &workflow, tasks, seed),
            Request::Complete {
                tenant,
                task,
                cores,
                memory_mb,
                disk_mb,
                duration_s,
            } => self.complete(&tenant, task, cores, memory_mb, disk_mb, duration_s),
            Request::Fault {
                tenant,
                task,
                kind,
                exhausted,
            } => self.fault(&tenant, task, &kind, &exhausted),
            Request::Predict { tenant, categories } => self.predict(&tenant, &categories),
            Request::Rebucket { tenant } => self.rebucket(&tenant),
            Request::Stats {} => self.stats(),
            Request::Snapshot { path } => self.snapshot(&path),
            Request::Close { tenant } => self.close(&tenant),
            Request::Shutdown {} => Response::Bye {},
        }
    }

    fn open(&mut self, tenant: String, algorithm: &str, seed: u64) -> Response {
        if tenant.is_empty() {
            return Response::error("bad-request", "tenant name must be non-empty");
        }
        if self.registry.find(&tenant).is_some() {
            return Response::error(
                "duplicate-tenant",
                format!("tenant `{tenant}` already open"),
            );
        }
        let algorithm = match algorithm_or_default(algorithm) {
            Ok(a) => a,
            Err(e) => return Response::error("unknown-algorithm", e),
        };
        self.registry
            .tenants
            .push(Tenant::new(tenant.clone(), algorithm, seed));
        Response::Opened { tenant }
    }

    fn submit(
        &mut self,
        tenant: &str,
        task: u64,
        category: u32,
        features: TaskFeatures,
    ) -> Response {
        let Some(i) = self.registry.find(tenant) else {
            return unknown_tenant(tenant);
        };
        if self.registry.tenants[i].submitted.contains(&task) {
            return Response::error(
                "duplicate-task",
                format!("task {task} was already submitted to `{tenant}`"),
            );
        }
        let threads = self.registry.threads;
        let t = &mut self.registry.tenants[i];
        let AppliedOp::Decisions(decisions) = t.apply(
            AllocOp::PredictFirstBatch {
                contexts: vec![TaskContext::new(CategoryId(category), features)],
            },
            threads,
        ) else {
            unreachable!("a batch op yields decisions");
        };
        t.submitted.insert(task);
        t.queue.push_back(TaskBooking {
            task,
            category,
            features,
            alloc: decisions[0].alloc,
        });
        let granted = self.registry.admit();
        Response::Submitted {
            tenant: tenant.to_string(),
            accepted: 1,
            granted,
            queued: self.registry.tenants[i].queue.len() as u64,
        }
    }

    fn workload(&mut self, tenant: &str, workflow: &str, tasks: usize, seed: u64) -> Response {
        let Some(i) = self.registry.find(tenant) else {
            return unknown_tenant(tenant);
        };
        let Some(by_name) = PaperWorkflow::ALL
            .into_iter()
            .find(|w| w.name() == workflow)
        else {
            return Response::error(
                "unknown-workflow",
                format!("unknown workflow `{workflow}` (see `tora workflows`)"),
            );
        };
        let built = if tasks == 0 {
            by_name.build(seed)
        } else {
            match by_name {
                PaperWorkflow::ColmenaXtb | PaperWorkflow::TopEft => {
                    return Response::error(
                        "bad-request",
                        "`tasks` applies only to synthetic workflows",
                    );
                }
                wf => match wf.spec(seed).tasks(tasks).materialize() {
                    Ok(built) => built,
                    Err(e) => return Response::error(e.code(), e.to_string()),
                },
            }
        };
        if let Some(spec) = built
            .tasks
            .iter()
            .find(|s| self.registry.tenants[i].submitted.contains(&s.id.0))
        {
            return Response::error(
                "duplicate-task",
                format!("task {} was already submitted to `{tenant}`", spec.id.0),
            );
        }
        let contexts: Vec<TaskContext> = built.tasks.iter().map(TaskContext::from).collect();
        let threads = self.registry.threads;
        let t = &mut self.registry.tenants[i];
        let AppliedOp::Decisions(decisions) =
            t.apply(AllocOp::PredictFirstBatch { contexts }, threads)
        else {
            unreachable!("a batch op yields decisions");
        };
        for (spec, decision) in built.tasks.iter().zip(&decisions) {
            t.submitted.insert(spec.id.0);
            t.queue.push_back(TaskBooking {
                task: spec.id.0,
                category: spec.category.0,
                features: spec.features,
                alloc: decision.alloc,
            });
        }
        let granted = self.registry.admit();
        Response::Submitted {
            tenant: tenant.to_string(),
            accepted: built.tasks.len() as u64,
            granted,
            queued: self.registry.tenants[i].queue.len() as u64,
        }
    }

    fn complete(
        &mut self,
        tenant: &str,
        task: u64,
        cores: f64,
        memory_mb: f64,
        disk_mb: f64,
        duration_s: f64,
    ) -> Response {
        let Some(i) = self.registry.find(tenant) else {
            return unknown_tenant(tenant);
        };
        let peak = ResourceVector::new(cores, memory_mb, disk_mb);
        if !peak.is_valid() || !duration_s.is_finite() || duration_s <= 0.0 {
            return Response::error(
                "bad-request",
                "peak axes must be finite and non-negative, duration_s positive",
            );
        }
        let Some(pos) = self.registry.tenants[i]
            .running
            .iter()
            .position(|b| b.task == task)
        else {
            return task_not_running(tenant, task);
        };
        let threads = self.registry.threads;
        let t = &mut self.registry.tenants[i];
        let booking = t.running.remove(pos);
        // Same record a worker report produces in the engine: the time axis
        // carries the duration, significance is the submission-order weight.
        let record = ResourceRecord::from_task(
            &TaskSpec::new(task, booking.category, peak, duration_s)
                .with_features(booking.features),
        );
        t.apply(AllocOp::Observe { record }, threads);
        t.apply(
            AllocOp::ObserveOutcome {
                category: booking.category_id(),
                outcome: AttemptFeedback::Success,
                rack: None,
            },
            threads,
        );
        t.completed += 1;
        let admitted = self.registry.admit();
        Response::Completed {
            tenant: tenant.to_string(),
            task,
            admitted,
        }
    }

    fn fault(&mut self, tenant: &str, task: u64, kind: &str, exhausted: &[String]) -> Response {
        let Some(i) = self.registry.find(tenant) else {
            return unknown_tenant(tenant);
        };
        let feedback = match kind {
            "crash" => AttemptFeedback::Crash,
            "straggler" => AttemptFeedback::Straggler,
            "exhaustion" => AttemptFeedback::Exhaustion,
            other => {
                return Response::error(
                    "bad-fault-kind",
                    format!("unknown fault kind `{other}` (crash | straggler | exhaustion)"),
                );
            }
        };
        let mask = if feedback == AttemptFeedback::Exhaustion {
            match parse_axes(exhausted) {
                Ok(mask) if mask.any() => mask,
                Ok(_) => {
                    return Response::error(
                        "bad-request",
                        "an exhaustion fault needs at least one exhausted axis",
                    );
                }
                Err(e) => return Response::error("bad-request", e),
            }
        } else {
            ResourceMask::NONE
        };
        let Some(pos) = self.registry.tenants[i]
            .running
            .iter()
            .position(|b| b.task == task)
        else {
            return task_not_running(tenant, task);
        };
        let threads = self.registry.threads;
        let t = &mut self.registry.tenants[i];
        let booking = t.running.remove(pos);
        t.apply(
            AllocOp::ObserveOutcome {
                category: booking.category_id(),
                outcome: feedback,
                rack: None,
            },
            threads,
        );
        t.faults += 1;
        let (alloc, infeasible) = if feedback == AttemptFeedback::Exhaustion {
            let AppliedOp::Decision(decision) = t.apply(
                AllocOp::PredictRetry {
                    context: booking.context(),
                    prev: booking.alloc,
                    exhausted: mask,
                },
                threads,
            ) else {
                unreachable!("a retry op yields one decision");
            };
            (decision.alloc, decision.infeasible)
        } else {
            // Infrastructure faults don't invalidate the allocation: the
            // retry redispatches under the same grant, at the queue front.
            (booking.alloc, false)
        };
        if !infeasible {
            self.registry.tenants[i].queue.push_front(TaskBooking {
                task,
                category: booking.category,
                features: booking.features,
                alloc,
            });
        }
        let admitted = self.registry.admit();
        let queued = self.registry.tenants[i]
            .queue
            .iter()
            .any(|b| b.task == task);
        Response::Retried {
            tenant: tenant.to_string(),
            task,
            alloc: (!infeasible).then(|| alloc.into()),
            queued,
            infeasible,
            admitted,
        }
    }

    fn predict(&mut self, tenant: &str, categories: &[u32]) -> Response {
        let Some(i) = self.registry.find(tenant) else {
            return unknown_tenant(tenant);
        };
        let threads = self.registry.threads;
        let t = &mut self.registry.tenants[i];
        let AppliedOp::Decisions(decisions) = t.apply(
            AllocOp::PredictFirstBatch {
                contexts: categories
                    .iter()
                    .map(|&c| TaskContext::from(CategoryId(c)))
                    .collect(),
            },
            threads,
        ) else {
            unreachable!("a batch op yields decisions");
        };
        Response::Predictions {
            tenant: tenant.to_string(),
            predictions: categories
                .iter()
                .zip(&decisions)
                .map(|(&category, d)| Prediction {
                    category,
                    kind: d.kind.to_string(),
                    alloc: d.alloc.into(),
                })
                .collect(),
        }
    }

    fn rebucket(&mut self, tenant: &str) -> Response {
        let Some(i) = self.registry.find(tenant) else {
            return unknown_tenant(tenant);
        };
        let threads = self.registry.threads;
        let AppliedOp::Rebucketed(changed) =
            self.registry.tenants[i].apply(AllocOp::RebucketAll, threads)
        else {
            unreachable!("a rebucket op yields a count");
        };
        Response::Rebucketed {
            tenant: tenant.to_string(),
            changed,
        }
    }

    fn stats(&self) -> Response {
        let capacity = self.registry.capacity;
        Response::StatsReport {
            workers: self.registry.workers as u64,
            capacity: capacity.into(),
            used: self.registry.used().into(),
            tenants: self
                .registry
                .tenants
                .iter()
                .map(|t| TenantStatus {
                    tenant: t.name.clone(),
                    share: t.dominant_share(&capacity),
                    running: t.running.len() as u64,
                    queued: t.queue.len() as u64,
                    completed: t.completed,
                    faults: t.faults,
                    ops: t.log.len() as u64,
                })
                .collect(),
        }
    }

    fn snapshot(&self, path: &str) -> Response {
        let json = match self.snapshot_json() {
            Ok(json) => json,
            Err(e) => return Response::error("io", e),
        };
        if let Err(e) = std::fs::write(path, json) {
            return Response::error("io", format!("writing `{path}`: {e}"));
        }
        Response::Snapshotted {
            path: path.to_string(),
            tenants: self.registry.tenants.len() as u64,
        }
    }

    fn close(&mut self, tenant: &str) -> Response {
        let Some(i) = self.registry.find(tenant) else {
            return unknown_tenant(tenant);
        };
        let closed = self.registry.tenants.remove(i);
        let released = (closed.running.len() + closed.queue.len()) as u64;
        let admitted = self.registry.admit();
        Response::Closed {
            tenant: tenant.to_string(),
            released,
            admitted,
        }
    }
}

impl TaskBooking {
    fn category_id(&self) -> CategoryId {
        CategoryId(self.category)
    }
}

fn unknown_tenant(tenant: &str) -> Response {
    Response::error("unknown-tenant", format!("no open tenant `{tenant}`"))
}

fn task_not_running(tenant: &str, task: u64) -> Response {
    Response::error(
        "task-not-running",
        format!("task {task} of `{tenant}` is not currently granted"),
    )
}

/// Parse exhausted-axis labels (`cores`, `memory`, `disk`, `gpus`, `time`)
/// into a mask.
fn parse_axes(labels: &[String]) -> Result<ResourceMask, String> {
    let mut mask = ResourceMask::NONE;
    for label in labels {
        let kind = ResourceKind::ALL
            .into_iter()
            .find(|k| k.label() == label)
            .ok_or_else(|| format!("unknown resource axis `{label}`"))?;
        mask.set(kind, true);
    }
    Ok(mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> Session {
        Session::new(&ServeConfig::default())
    }

    fn line(session: &mut Session, line: &str) -> String {
        let (response, _) = session.handle_line(line);
        serde_json::to_string(&response).unwrap()
    }

    #[test]
    fn the_happy_path_speaks_jsonl() {
        let mut s = session();
        let opened = line(
            &mut s,
            r#"{"Open":{"tenant":"wf","algorithm":"greedy-bucketing","seed":7}}"#,
        );
        assert_eq!(opened, r#"{"Opened":{"tenant":"wf"}}"#);
        let submitted = line(
            &mut s,
            r#"{"Submit":{"tenant":"wf","task":0,"category":1}}"#,
        );
        assert!(submitted.contains(r#""accepted":1"#), "{submitted}");
        assert!(submitted.contains(r#""granted":[{"#), "{submitted}");
        let completed = line(
            &mut s,
            r#"{"Complete":{"tenant":"wf","task":0,"cores":1.0,"memory_mb":200.0,"disk_mb":50.0,"duration_s":5.0}}"#,
        );
        assert!(completed.contains(r#""Completed""#), "{completed}");
        let (bye, shutdown) = s.handle_line(r#"{"Shutdown":{}}"#);
        assert_eq!(bye, Response::Bye {});
        assert!(shutdown);
    }

    #[test]
    fn errors_have_stable_codes_and_mutate_nothing() {
        let mut s = session();
        let cases = [
            (
                r#"{"Submit":{"tenant":"ghost","task":0,"category":0}}"#,
                "unknown-tenant",
            ),
            (r#"not json"#, "bad-request"),
            (
                r#"{"Open":{"tenant":"wf","algorithm":"nope"}}"#,
                "unknown-algorithm",
            ),
        ];
        for (request, code) in cases {
            let (response, _) = s.handle_line(request);
            let Response::Error { code: got, .. } = response else {
                panic!("expected an error for {request}");
            };
            assert_eq!(got, code, "{request}");
        }
        // The failed open left no tenant behind.
        let (response, _) = s.handle_line(r#"{"Open":{"tenant":"wf"}}"#);
        assert_eq!(
            response,
            Response::Opened {
                tenant: "wf".into()
            }
        );
        let (dup, _) = s.handle_line(r#"{"Open":{"tenant":"wf"}}"#);
        assert!(matches!(dup, Response::Error { code, .. } if code == "duplicate-tenant"));
        let (dup_task, _) = {
            s.handle_line(r#"{"Submit":{"tenant":"wf","task":3,"category":0}}"#);
            s.handle_line(r#"{"Submit":{"tenant":"wf","task":3,"category":0}}"#)
        };
        assert!(matches!(dup_task, Response::Error { code, .. } if code == "duplicate-task"));
    }

    #[test]
    fn exhaustion_faults_escalate_and_requeue_at_the_front() {
        let mut s = session();
        s.handle_line(r#"{"Open":{"tenant":"wf","seed":7}}"#);
        // Warm past exploration so predictions are estimator-driven.
        for task in 0..12u64 {
            s.handle_line(&format!(
                r#"{{"Submit":{{"tenant":"wf","task":{task},"category":0}}}}"#
            ));
            s.handle_line(&format!(
                r#"{{"Complete":{{"tenant":"wf","task":{task},"cores":1.0,"memory_mb":900.0,"disk_mb":100.0,"duration_s":4.0}}}}"#
            ));
        }
        s.handle_line(r#"{"Submit":{"tenant":"wf","task":100,"category":0}}"#);
        let (response, _) = s.handle_line(
            r#"{"Fault":{"tenant":"wf","task":100,"kind":"exhaustion","exhausted":["memory"]}}"#,
        );
        let Response::Retried {
            alloc, infeasible, ..
        } = response
        else {
            panic!("expected Retried, got {response:?}");
        };
        assert!(!infeasible);
        assert!(alloc.expect("feasible retry has an alloc").memory_mb > 0.0);
    }
}
