//! Multi-tenant allocator state and cross-tenant fair admission.
//!
//! Each open workflow is a [`Tenant`]: a private [`Allocator`] (its own
//! estimator bank, RNG streams and feedback window — tenants never share
//! allocator state), the replayable [`AllocLog`] journal of every operation
//! applied to it, and the tenant's running/queued task books. The
//! [`Registry`] owns the tenants plus the shared pool capacity and decides
//! *admission* — which queued tasks may book capacity — by dominant-resource
//! fairness.
//!
//! ## Dominant-resource fairness (DRF)
//!
//! A tenant's *dominant share* is the largest fraction of any managed pool
//! axis its granted tasks currently book: `max_k booked_k / capacity_k` over
//! cores, memory and disk. Admission repeatedly picks the tenant with the
//! smallest dominant share among those with a non-empty queue and admits the
//! head of its FIFO queue; it stops as soon as that head does not fit the
//! remaining capacity. Not skipping past a blocked head is deliberate:
//! progressive filling without bypass cannot starve a large task behind
//! which capacity will eventually drain. Ties on share break by tenant name,
//! so admission order — like everything else in the daemon — is a pure
//! function of the request history.
//!
//! The pool is an *aggregate* capacity model (`workers ×` the paper's §V-A
//! worker shape): the daemon is an allocation service, not a placement
//! engine, so per-worker fragmentation is out of scope here and handled by
//! the batch system consuming the grants.

use crate::cli::parse_algorithm;
use crate::prelude::*;
use tora_alloc::oplog::{AllocLog, AllocOp};

use std::collections::{BTreeSet, VecDeque};

use super::protocol::Grant;
use super::ServeConfig;

/// A task the daemon is tracking: its id, category, feature vector, and the
/// allocation it is running under (or will run under once admitted).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(super) struct TaskBooking {
    /// Task id, unique within the tenant.
    pub task: u64,
    /// The task's category.
    pub category: u32,
    /// Pre-run features the task was submitted with (zero when the client
    /// sent none); retries and completion records re-present the same ones.
    pub features: TaskFeatures,
    /// The predicted allocation.
    pub alloc: ResourceVector,
}

impl TaskBooking {
    /// The task's full prediction context.
    pub fn context(&self) -> TaskContext {
        TaskContext::new(CategoryId(self.category), self.features)
    }
}

/// One open workflow: a private allocator plus its books.
pub(super) struct Tenant {
    /// Tenant name (unique while open).
    pub name: String,
    /// The algorithm the allocator was built with.
    pub algorithm: AlgorithmKind,
    /// The allocator's seed.
    pub seed: u64,
    /// The tenant's own allocator — never shared.
    pub allocator: Allocator,
    /// Journal of every state-moving allocator call, for snapshots.
    pub log: AllocLog,
    /// Admitted tasks, in admission order. Their allocations are booked
    /// against pool capacity.
    pub running: Vec<TaskBooking>,
    /// Tasks waiting for admission, FIFO. Retries re-enter at the front.
    pub queue: VecDeque<TaskBooking>,
    /// Every task id ever submitted, for duplicate detection. Ordered so
    /// snapshots serialize deterministically.
    pub submitted: BTreeSet<u64>,
    /// Completions observed.
    pub completed: u64,
    /// Faults observed.
    pub faults: u64,
}

impl Tenant {
    /// A fresh tenant with an empty journal and books.
    pub fn new(name: String, algorithm: AlgorithmKind, seed: u64) -> Self {
        Tenant {
            name,
            algorithm,
            seed,
            allocator: Allocator::builder(algorithm).seed(seed).build(),
            log: AllocLog::new(),
            running: Vec::new(),
            queue: VecDeque::new(),
            submitted: BTreeSet::new(),
            completed: 0,
            faults: 0,
        }
    }

    /// Sum of the allocations booked by running tasks.
    ///
    /// Recomputed from the books on every call rather than maintained
    /// incrementally: floating-point sums are order-sensitive, and a
    /// restored daemon must reproduce the live daemon's numbers exactly —
    /// summing the (order-preserved) running list is reproducible where an
    /// add/sub running total would drift.
    pub fn booked(&self) -> ResourceVector {
        self.running
            .iter()
            .fold(ResourceVector::ZERO, |acc, b| acc.add(&b.alloc))
    }

    /// The tenant's dominant share of `capacity`: the largest booked
    /// fraction across the managed axes.
    pub fn dominant_share(&self, capacity: &ResourceVector) -> f64 {
        let booked = self.booked();
        ResourceKind::STANDARD
            .into_iter()
            .map(|k| booked[k] / capacity[k])
            .fold(0.0, f64::max)
    }

    /// Journal `op` and apply it to the allocator, returning whatever the
    /// allocator returned. Keeping journaling and application in one place
    /// guarantees the journal is exactly the applied sequence.
    pub fn apply(&mut self, op: AllocOp, threads: usize) -> AppliedOp {
        let result = match &op {
            AllocOp::Observe { record } => {
                self.allocator.observe(record);
                AppliedOp::Observed
            }
            AllocOp::PredictFirstBatch { contexts } => {
                AppliedOp::Decisions(self.allocator.predict_first_batch(contexts, threads))
            }
            AllocOp::PredictRetry {
                context,
                prev,
                exhausted,
            } => AppliedOp::Decision(self.allocator.predict_retry(*context, prev, exhausted)),
            AllocOp::ObserveOutcome {
                category,
                outcome,
                rack,
            } => {
                self.allocator.observe_outcome(*category, *outcome, *rack);
                AppliedOp::Observed
            }
            AllocOp::RebucketAll => {
                AppliedOp::Rebucketed(self.allocator.rebucket_all(threads).len() as u64)
            }
        };
        self.log.push(op);
        result
    }
}

/// What [`Tenant::apply`] produced, by op shape.
pub(super) enum AppliedOp {
    /// `Observe` / `ObserveOutcome`: feedback ingested, nothing returned.
    Observed,
    /// `PredictFirstBatch`: one decision per request.
    Decisions(Vec<AllocationDecision>),
    /// `PredictRetry`: the escalated decision.
    Decision(AllocationDecision),
    /// `RebucketAll`: changed (category, axis) pairs.
    Rebucketed(u64),
}

/// The daemon's tenants plus the shared pool.
pub(super) struct Registry {
    /// Open tenants, in creation order.
    pub tenants: Vec<Tenant>,
    /// Pool worker count.
    pub workers: usize,
    /// Aggregate pool capacity (`workers ×` worker shape).
    pub capacity: ResourceVector,
    /// Resolved worker-thread count for the sharded allocator paths.
    pub threads: usize,
}

impl Registry {
    /// An empty registry over `config`'s pool.
    pub fn new(config: &ServeConfig) -> Self {
        Registry {
            tenants: Vec::new(),
            workers: config.workers,
            capacity: WorkerSpec::paper_default()
                .capacity
                .scale(config.workers as f64),
            threads: tora_alloc::par::resolve(config.threads),
        }
    }

    /// Index of the named tenant.
    pub fn find(&self, tenant: &str) -> Option<usize> {
        self.tenants.iter().position(|t| t.name == tenant)
    }

    /// Capacity currently booked across all tenants.
    pub fn used(&self) -> ResourceVector {
        self.tenants
            .iter()
            .fold(ResourceVector::ZERO, |acc, t| acc.add(&t.booked()))
    }

    /// Whether `alloc` fits in the remaining pool capacity on the managed
    /// (spatial) axes. The time axis is never packed.
    fn fits(&self, alloc: &ResourceVector) -> bool {
        let used = self.used();
        ResourceKind::STANDARD
            .into_iter()
            .all(|k| used[k] + alloc[k] <= self.capacity[k])
    }

    /// Run DRF admission to a fixpoint, returning the grants in admission
    /// order.
    pub fn admit(&mut self) -> Vec<Grant> {
        let mut granted = Vec::new();
        // Each round admits the queue head of the min-(share, name) tenant
        // with work waiting, until no such tenant exists or its head no
        // longer fits.
        while let Some(next) = self
            .tenants
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.queue.is_empty())
            .min_by(|(_, a), (_, b)| {
                a.dominant_share(&self.capacity)
                    .total_cmp(&b.dominant_share(&self.capacity))
                    .then_with(|| a.name.cmp(&b.name))
            })
            .map(|(i, _)| i)
        {
            let head = *self.tenants[next].queue.front().expect("non-empty queue");
            if !self.fits(&head.alloc) {
                break;
            }
            let tenant = &mut self.tenants[next];
            tenant.queue.pop_front();
            tenant.running.push(head);
            granted.push(Grant {
                tenant: tenant.name.clone(),
                task: head.task,
                alloc: head.alloc.into(),
            });
        }
        granted
    }
}

/// Resolve an `Open` request's algorithm label; empty picks the paper's
/// best performer.
pub(super) fn algorithm_or_default(label: &str) -> Result<AlgorithmKind, String> {
    if label.is_empty() {
        Ok(AlgorithmKind::ExhaustiveBucketing)
    } else {
        parse_algorithm(label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn booking(task: u64, cores: f64) -> TaskBooking {
        TaskBooking {
            task,
            category: 0,
            features: TaskFeatures::default(),
            alloc: ResourceVector::new(cores, 1024.0, 512.0),
        }
    }

    fn registry(workers: usize) -> Registry {
        Registry::new(&ServeConfig {
            workers,
            threads: 1,
        })
    }

    #[test]
    fn admission_favors_the_smallest_dominant_share() {
        let mut reg = registry(1); // 16 cores, 64 GB, 64 GB
        for name in ["a", "b"] {
            reg.tenants.push(Tenant::new(
                name.into(),
                AlgorithmKind::ExhaustiveBucketing,
                7,
            ));
        }
        // Tenant a already books 8 cores (share 0.5); b books nothing.
        reg.tenants[0].running.push(booking(0, 8.0));
        reg.tenants[0].queue.push_back(booking(1, 2.0));
        reg.tenants[1].queue.push_back(booking(0, 2.0));
        let grants = reg.admit();
        // b admits first (share 0 vs a's 0.5), then a's head fits too.
        let order: Vec<(String, u64)> = grants.iter().map(|g| (g.tenant.clone(), g.task)).collect();
        assert_eq!(order, vec![("b".to_string(), 0), ("a".to_string(), 1)]);

        // A head too big for the remaining capacity blocks admission for
        // everyone behind it — progressive filling never bypasses, so a
        // large task cannot be starved by a stream of small ones.
        reg.tenants[1].queue.push_back(booking(1, 20.0)); // 16-core pool
        reg.tenants[0].queue.push_back(booking(2, 1.0));
        assert!(reg.admit().is_empty(), "min-share head blocks, no bypass");
        assert_eq!(reg.tenants[0].queue.len(), 1, "a's small task stays queued");
        assert_eq!(reg.tenants[1].queue.len(), 1, "blocked head stays queued");
    }

    #[test]
    fn admission_stops_at_capacity_and_ties_break_by_name() {
        let mut reg = registry(1);
        for name in ["b", "a"] {
            reg.tenants.push(Tenant::new(
                name.into(),
                AlgorithmKind::ExhaustiveBucketing,
                7,
            ));
        }
        // Equal shares (both empty): "a" wins the tie despite later creation.
        reg.tenants[0].queue.push_back(booking(0, 10.0));
        reg.tenants[1].queue.push_back(booking(0, 10.0));
        let grants = reg.admit();
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].tenant, "a");
        assert_eq!(reg.used().cores(), 10.0);
    }

    #[test]
    fn booked_sums_are_order_stable() {
        let mut t = Tenant::new("t".into(), AlgorithmKind::GreedyBucketing, 7);
        t.running.push(booking(0, 0.1));
        t.running.push(booking(1, 0.2));
        t.running.push(booking(2, 0.3));
        let a = t.booked();
        let b = t.booked();
        assert_eq!(a, b);
        assert!(t.dominant_share(&ResourceVector::new(16.0, 65536.0, 65536.0)) > 0.0);
    }
}
