//! Daemon snapshot/restore: a killed `tora serve` resumes byte-identically.
//!
//! Allocator internals (trait-object estimators, mid-stream RNGs) cannot be
//! serialized, so a snapshot stores each tenant's *input journal*
//! ([`AllocLog`]) instead — the allocator is deterministic in `(algorithm,
//! seed, input sequence)`, so replaying the journal through a freshly built
//! allocator reproduces the original exactly (see `tora_alloc::oplog`).
//! Everything else about a tenant — its books, counters and identity — is
//! plain data and is stored directly.
//!
//! Determinism contract: `snapshot → restore → snapshot` produces the same
//! bytes, and a restored daemon answers any request stream exactly as the
//! uninterrupted daemon would. Every collection serializes in a defined
//! order (vectors preserve order; the submitted-id set is ordered), and
//! per-tenant capacity sums are recomputed from the order-preserved running
//! list rather than carried as accumulated floats.

use crate::prelude::*;
use serde::{Deserialize, Serialize};
use tora_alloc::oplog::AllocLog;

use std::collections::VecDeque;

use super::tenant::{algorithm_or_default, Registry, TaskBooking, Tenant};
use super::ServeConfig;

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// One tracked task in snapshot form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct BookingSnapshot {
    task: u64,
    category: u32,
    /// Pre-feature snapshots omit this; defaulting reproduces their zeros.
    #[serde(default)]
    features: TaskFeatures,
    alloc: ResourceVector,
}

impl From<&TaskBooking> for BookingSnapshot {
    fn from(b: &TaskBooking) -> Self {
        BookingSnapshot {
            task: b.task,
            category: b.category,
            features: b.features,
            alloc: b.alloc,
        }
    }
}

impl From<&BookingSnapshot> for TaskBooking {
    fn from(s: &BookingSnapshot) -> Self {
        TaskBooking {
            task: s.task,
            category: s.category,
            features: s.features,
            alloc: s.alloc,
        }
    }
}

/// One tenant in snapshot form: builder inputs + journal + books.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct TenantSnapshot {
    name: String,
    algorithm: String,
    seed: u64,
    log: AllocLog,
    running: Vec<BookingSnapshot>,
    queued: Vec<BookingSnapshot>,
    submitted: Vec<u64>,
    completed: u64,
    faults: u64,
}

/// The daemon's full persistent state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeSnapshot {
    version: u32,
    workers: usize,
    tenants: Vec<TenantSnapshot>,
}

impl ServeSnapshot {
    /// Capture `registry` into snapshot form.
    pub(super) fn capture(registry: &Registry) -> Self {
        ServeSnapshot {
            version: SNAPSHOT_VERSION,
            workers: registry.workers,
            tenants: registry
                .tenants
                .iter()
                .map(|t| TenantSnapshot {
                    name: t.name.clone(),
                    algorithm: t.algorithm.label().to_string(),
                    seed: t.seed,
                    log: t.log.clone(),
                    running: t.running.iter().map(Into::into).collect(),
                    queued: t.queue.iter().map(Into::into).collect(),
                    submitted: t.submitted.iter().copied().collect(),
                    completed: t.completed,
                    faults: t.faults,
                })
                .collect(),
        }
    }

    /// Rebuild a live registry: every tenant's allocator is built fresh and
    /// its journal replayed through it. `config.workers` is overridden by
    /// the snapshot (the pool the books were admitted against); `threads`
    /// is taken from `config` — thread count never changes results.
    pub(super) fn restore(&self, config: &ServeConfig) -> Result<Registry, String> {
        if self.version != SNAPSHOT_VERSION {
            return Err(format!(
                "snapshot version {} unsupported (expected {SNAPSHOT_VERSION})",
                self.version
            ));
        }
        let mut registry = Registry::new(&ServeConfig {
            workers: self.workers,
            threads: config.threads,
        });
        for snap in &self.tenants {
            let algorithm = algorithm_or_default(&snap.algorithm)?;
            let mut tenant = Tenant::new(snap.name.clone(), algorithm, snap.seed);
            snap.log.replay(&mut tenant.allocator, registry.threads);
            tenant.log = snap.log.clone();
            tenant.running = snap.running.iter().map(Into::into).collect();
            tenant.queue = snap.queued.iter().map(Into::into).collect::<VecDeque<_>>();
            tenant.submitted = snap.submitted.iter().copied().collect();
            tenant.completed = snap.completed;
            tenant.faults = snap.faults;
            registry.tenants.push(tenant);
        }
        Ok(registry)
    }

    /// Serialize to the on-disk JSON form.
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string(self).map_err(|e| format!("snapshot serialization failed: {e}"))
    }

    /// Parse the on-disk JSON form.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| format!("snapshot parse failed: {e}"))
    }
}
