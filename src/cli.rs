//! Command-line scaffolding shared by the `tora` binary.
//!
//! The binary (`src/bin/tora.rs`) keeps the per-command drivers; everything
//! reusable lives here: the flag scanner ([`Args`]) and the parsers that turn
//! raw flag strings into domain values ([`parse_algorithm`],
//! [`parse_workflow`], [`parse_sim_config`]). Keeping these in the library
//! crate lets integration tests exercise argument handling without spawning
//! the binary.

use crate::prelude::*;
use crate::workloads::{io as trace_io, PaperWorkflow};

/// Simple `--flag value` / positional argument scanner.
///
/// Flags take at most one value; a flag followed by another `--flag` is
/// treated as valueless (presence-only). Everything else is positional.
pub struct Args<'a> {
    /// Positional arguments, in order.
    pub positional: Vec<&'a str>,
    /// `(name, value)` pairs for every `--name [value]` seen.
    pub flags: Vec<(&'a str, Option<&'a str>)>,
}

impl<'a> Args<'a> {
    /// Scan raw argv fragments into positionals and `--flag [value]` pairs.
    pub fn parse(raw: &'a [String]) -> Result<Self, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut iter = raw.iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = iter
                    .peek()
                    .filter(|v| !v.starts_with("--"))
                    .map(|v| v.as_str());
                if value.is_some() {
                    iter.next();
                }
                flags.push((name, value));
            } else {
                positional.push(arg.as_str());
            }
        }
        Ok(Args { positional, flags })
    }

    /// The flag's value slot, if the flag appeared at all.
    pub fn flag(&self, name: &str) -> Option<Option<&str>> {
        self.flags.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }

    /// The flag's value; an error if the flag appeared without one.
    pub fn value_of(&self, name: &str) -> Result<Option<&str>, String> {
        match self.flag(name) {
            None => Ok(None),
            Some(Some(v)) => Ok(Some(v)),
            Some(None) => Err(format!("--{name} requires a value")),
        }
    }

    /// `--seed <u64>`, defaulting to 42.
    pub fn seed(&self) -> Result<u64, String> {
        match self.value_of("seed")? {
            None => Ok(42),
            Some(v) => v.parse().map_err(|_| format!("bad --seed `{v}`")),
        }
    }

    /// `--salvage <fraction>`: the checkpointed fraction of finished work a
    /// crashed attempt banks (see `FaultPlan::checkpointed_fraction`).
    /// `None` when the flag is absent; an error outside `[0, 1]`.
    pub fn salvage(&self) -> Result<Option<f64>, String> {
        match self.value_of("salvage")? {
            None => Ok(None),
            Some(v) => {
                let fraction: f64 = v
                    .parse()
                    .ok()
                    .filter(|f: &f64| (0.0..=1.0).contains(f))
                    .ok_or_else(|| format!("bad --salvage `{v}` (a fraction in [0, 1])"))?;
                Ok(Some(fraction))
            }
        }
    }

    /// `--threads <n>`: worker threads for the sharded allocator paths.
    /// `0` (the default when the flag is absent) means auto-detect — the
    /// `TORA_THREADS` env var, else the cgroup-aware core count.
    pub fn threads(&self) -> Result<usize, String> {
        match self.value_of("threads")? {
            None => Ok(0),
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad --threads `{v}` (0 = auto)")),
        }
    }

    /// Whether the flag appeared (with or without a value).
    pub fn has(&self, name: &str) -> bool {
        self.flag(name).is_some()
    }
}

/// Resolve an algorithm label (see `tora algorithms`) to its [`AlgorithmKind`].
pub fn parse_algorithm(name: &str) -> Result<AlgorithmKind, String> {
    const EXTRAS: [AlgorithmKind; 4] = [
        AlgorithmKind::GreedyBucketingIncremental,
        AlgorithmKind::KMeansBucketing,
        AlgorithmKind::FeatureBinned,
        AlgorithmKind::SemiBandit,
    ];
    AlgorithmKind::PAPER_SET
        .into_iter()
        .chain(EXTRAS)
        .find(|a| a.label() == name)
        .ok_or_else(|| format!("unknown algorithm `{name}` (see `tora algorithms`)"))
}

/// Resolve a workflow: a `.json` trace file, or a built-in name plus the
/// shaping flags (`--seed`, `--tasks`, `--dag`, `--shape`/`--width`/
/// `--depth`/`--loopback`).
pub fn parse_workflow(name_or_path: &str, args: &Args<'_>) -> Result<Workflow, String> {
    let seed = args.seed()?;
    if name_or_path.ends_with(".json") {
        return trace_io::load(std::path::Path::new(name_or_path)).map_err(|e| e.to_string());
    }
    let tasks: Option<usize> = match args.value_of("tasks")? {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| format!("bad --tasks `{v}`"))?),
    };
    let by_name = PaperWorkflow::ALL
        .into_iter()
        .find(|w| w.name() == name_or_path)
        .ok_or_else(|| format!("unknown workflow `{name_or_path}` (see `tora workflows`)"))?;
    if let Some(name) = args.value_of("shape")? {
        if args.has("dag") {
            return Err("--shape and --dag are mutually exclusive".into());
        }
        if tasks.is_some() {
            return Err("--shape fixes the task count; drop --tasks".into());
        }
        let width: u32 = match args.value_of("width")? {
            None => 4,
            Some(v) => v.parse().map_err(|_| format!("bad --width `{v}`"))?,
        };
        let depth: u32 = match args.value_of("depth")? {
            None => 8,
            Some(v) => v.parse().map_err(|_| format!("bad --depth `{v}`"))?,
        };
        let loopback: u32 = match args.value_of("loopback")? {
            None => 0,
            Some(v) => v.parse().map_err(|_| format!("bad --loopback `{v}`"))?,
        };
        let shape = DagShape::by_name(name, width, depth)
            .ok_or_else(|| {
                format!(
                    "unknown shape `{name}` (expected one of: {})",
                    crate::workloads::dag::SHAPE_NAMES.join(", ")
                )
            })?
            .with_loopback(loopback);
        return by_name
            .spec(seed)
            .dag_shape(shape)
            .materialize()
            .map_err(|e| e.to_string());
    }
    if args.has("dag") {
        if by_name != PaperWorkflow::TopEft {
            return Err("--dag is only defined for the topeft workflow".into());
        }
        return PaperWorkflow::TopEft
            .spec(seed)
            .dag()
            .materialize()
            .map_err(|e| e.to_string());
    }
    match (by_name, tasks) {
        (_, None) => Ok(by_name.build(seed)),
        (PaperWorkflow::ColmenaXtb | PaperWorkflow::TopEft, Some(_)) => {
            Err("--tasks applies only to synthetic workflows".into())
        }
        (wf, Some(n)) => wf
            .spec(seed)
            .tasks(n)
            .materialize()
            .map_err(|e| e.to_string()),
    }
}

/// Build a [`SimConfig`] from the common simulation flags (`--seed`,
/// `--workers`, `--arrival`, `--policy`, `--enforcement`, `--mix`, `--log`,
/// `--threads`).
pub fn parse_sim_config(args: &Args<'_>) -> Result<SimConfig, String> {
    let mut config = SimConfig::paper_like(args.seed()?);
    config.threads = args.threads()?;
    match args.value_of("workers")? {
        None | Some("paper") => {}
        Some(spec) => {
            let n: usize = spec
                .strip_prefix("fixed:")
                .and_then(|n| n.parse().ok())
                .ok_or_else(|| format!("bad --workers `{spec}` (fixed:<n> | paper)"))?;
            if n == 0 {
                return Err("--workers fixed:<n> requires n ≥ 1".into());
            }
            config.churn = ChurnConfig::fixed(n);
        }
    }
    match args.value_of("arrival")? {
        None => {}
        Some("batch") => config.arrival = ArrivalModel::Batch,
        Some(spec) => {
            let mean: f64 = spec
                .strip_prefix("poisson:")
                .and_then(|m| m.parse().ok())
                .filter(|m: &f64| m.is_finite() && *m > 0.0)
                .ok_or_else(|| format!("bad --arrival `{spec}` (batch | poisson:<mean-s>)"))?;
            config.arrival = ArrivalModel::Poisson {
                mean_interval_s: mean,
            };
        }
    }
    match args.value_of("policy")? {
        None => {}
        Some(name) => {
            config.queue_policy = QueuePolicy::ALL
                .into_iter()
                .find(|p| p.label() == name)
                .ok_or_else(|| format!("unknown --policy `{name}`"))?;
        }
    }
    match args.value_of("enforcement")? {
        None | Some("ramp") => {}
        Some("instant") => config.enforcement = EnforcementModel::InstantPeak,
        Some(other) => return Err(format!("unknown --enforcement `{other}` (ramp | instant)")),
    }
    if let Some(spec) = args.value_of("mix")? {
        let (frac, scale) = spec
            .split_once(':')
            .and_then(|(f, s)| Some((f.parse().ok()?, s.parse().ok()?)))
            .ok_or_else(|| format!("bad --mix `{spec}` (use <fraction>:<scale>)"))?;
        let mix = crate::sim::WorkerMix {
            large_fraction: frac,
            scale,
        };
        mix.validate()?;
        config.worker_mix = Some(mix);
    }
    if args.has("log") {
        config.record_log = true;
    }
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_and_positionals_scan() {
        let raw = raw(&["bimodal", "--seed", "7", "--quick", "--tasks", "120"]);
        let args = Args::parse(&raw).unwrap();
        assert_eq!(args.positional, vec!["bimodal"]);
        assert_eq!(args.seed().unwrap(), 7);
        assert!(args.has("quick"));
        assert_eq!(args.value_of("tasks").unwrap(), Some("120"));
        assert!(!args.has("salvage"));
    }

    #[test]
    fn salvage_parses_and_validates() {
        let ok = raw(&["--salvage", "0.5"]);
        assert_eq!(Args::parse(&ok).unwrap().salvage().unwrap(), Some(0.5));
        let absent = raw(&["--quick"]);
        assert_eq!(Args::parse(&absent).unwrap().salvage().unwrap(), None);
        for bad in [
            &["--salvage", "1.5"][..],
            &["--salvage", "nan"],
            &["--salvage"],
        ] {
            let bad = raw(bad);
            assert!(Args::parse(&bad).unwrap().salvage().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn algorithm_and_workflow_parse() {
        assert_eq!(
            parse_algorithm("greedy-bucketing").unwrap(),
            AlgorithmKind::GreedyBucketing
        );
        assert!(parse_algorithm("nope").is_err());
        let raw = raw(&["--tasks", "50", "--seed", "3"]);
        let args = Args::parse(&raw).unwrap();
        let wf = parse_workflow("bimodal", &args).unwrap();
        assert_eq!(wf.len(), 50);
        assert!(parse_workflow("nope", &args).is_err());
    }

    #[test]
    fn shape_flags_parse_and_conflict() {
        // Defaults: width 4, depth 8, no loop-back → diamond is 4*8+2 tasks.
        let diamond = raw(&["--shape", "diamond", "--seed", "3"]);
        let args = Args::parse(&diamond).unwrap();
        let wf = parse_workflow("bimodal", &args).unwrap();
        assert_eq!(wf.len(), 34);
        assert!(wf.has_dependencies());

        let pipeline = raw(&["--shape", "pipeline", "--depth", "12", "--loopback", "0"]);
        let args = Args::parse(&pipeline).unwrap();
        let wf = parse_workflow("exponential", &args).unwrap();
        assert_eq!(wf.len(), 12);

        for bad in [
            &["--shape", "moebius"][..],
            &["--shape", "diamond", "--dag"],
            &["--shape", "diamond", "--tasks", "50"],
            &["--shape", "diamond", "--width", "wide"],
        ] {
            let raw = raw(bad);
            let args = Args::parse(&raw).unwrap();
            assert!(parse_workflow("bimodal", &args).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn sim_config_flags_parse() {
        let raw = raw(&[
            "--seed",
            "9",
            "--workers",
            "fixed:12",
            "--arrival",
            "batch",
            "--enforcement",
            "instant",
            "--threads",
            "4",
        ]);
        let args = Args::parse(&raw).unwrap();
        let config = parse_sim_config(&args).unwrap();
        assert_eq!(config.churn.initial, 12);
        assert!(matches!(config.arrival, ArrivalModel::Batch));
        assert!(matches!(config.enforcement, EnforcementModel::InstantPeak));
        assert_eq!(config.threads, 4);
        let bad = vec!["--workers".to_string(), "fixed:0".to_string()];
        assert!(parse_sim_config(&Args::parse(&bad).unwrap()).is_err());
    }

    #[test]
    fn threads_flag_parses_and_defaults_to_auto() {
        let absent = raw(&["--seed", "1"]);
        assert_eq!(Args::parse(&absent).unwrap().threads().unwrap(), 0);
        let bad = raw(&["--threads", "many"]);
        assert!(Args::parse(&bad).unwrap().threads().is_err());
    }
}
