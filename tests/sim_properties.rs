//! Property-based tests of the simulation engine: conservation laws and log
//! consistency must hold for *any* configuration.

use proptest::prelude::*;
use tora::prelude::*;

fn arb_churn() -> impl Strategy<Value = ChurnConfig> {
    (
        1usize..6,
        1usize..4,
        0usize..10,
        prop::option::of(5.0f64..40.0),
    )
        .prop_map(|(initial, min, extra, interval)| {
            let max = min + extra;
            let initial = initial.clamp(1, max);
            let mean_interval_s = if initial < min {
                // Ramp-up requires churn to be enabled.
                Some(interval.unwrap_or(15.0))
            } else {
                interval
            };
            ChurnConfig {
                initial,
                min,
                max,
                mean_interval_s,
            }
        })
}

/// Aggressive but always-valid fault plans: frequent crashes (correlated
/// ones included), plenty of stragglers, lossy records, flaky dispatch —
/// with the resilience budgets enabled so every run must still terminate,
/// and dead-letter replay sometimes armed.
fn arb_fault_plan() -> impl Strategy<Value = FaultPlan> {
    let base = (
        prop::option::of(10.0f64..120.0),
        0.0f64..0.4,
        0.0f64..0.4,
        0.0f64..0.4,
        1usize..8,
        1usize..6,
    );
    // Correlated-crash and replay knobs are each both-or-neither pairs
    // (enforced by `FaultPlan::validate`), so generate them as options.
    let extras = (
        prop::option::of((20.0f64..200.0, 2u32..6)),
        prop::option::of((0.1f64..=1.0, 1usize..4)),
        0.0f64..=1.0,
    );
    (base, extras).prop_map(
        |(
            (crash, straggler, dropout, dispatch, max_attempts, unplaceable),
            (rack, replay, checkpoint),
        )| {
            FaultPlan {
                crash_mean_interval_s: crash,
                straggler_rate: straggler,
                straggler_multiplier: 6.0,
                straggler_timeout_s: 200.0,
                record_dropout_rate: dropout,
                dispatch_failure_rate: dispatch,
                dispatch_backoff_s: 1.5,
                max_dispatch_retries: 4,
                max_attempts,
                max_unplaceable_rounds: unplaceable,
                rack_crash_mean_interval_s: rack.map(|(interval, _)| interval),
                rack_count: rack.map_or(0, |(_, count)| count),
                replay_capacity_fraction: replay.map_or(0.0, |(fraction, _)| fraction),
                max_replay_rounds: replay.map_or(0, |(_, rounds)| rounds),
                checkpointed_fraction: checkpoint,
            }
        },
    )
}

/// Any generated DAG shape with any loop-back bound (0 disables it);
/// degenerate dimensions are included on purpose — the constructors clamp
/// them so every shape keeps at least one edge.
fn arb_dag_shape() -> impl Strategy<Value = DagShape> {
    let kind = (0u32..4, 0u32..6, 0u32..6).prop_map(|(k, w, d)| match k {
        0 => DagShape::fan_out_fan_in(w),
        1 => DagShape::pipeline(d),
        2 => DagShape::diamond(w, d),
        _ => DagShape::random_layered(w, d),
    });
    (kind, 0u32..4).prop_map(|(shape, max)| shape.with_loopback(max))
}

fn arb_arrival() -> impl Strategy<Value = ArrivalModel> {
    prop_oneof![
        Just(ArrivalModel::Batch),
        (0.1f64..5.0).prop_map(|m| ArrivalModel::Poisson { mean_interval_s: m }),
    ]
}

fn arb_policy() -> impl Strategy<Value = QueuePolicy> {
    prop::sample::select(QueuePolicy::ALL.to_vec())
}

fn arb_algorithm() -> impl Strategy<Value = AlgorithmKind> {
    prop::sample::select(vec![
        AlgorithmKind::WholeMachine,
        AlgorithmKind::MaxSeen,
        AlgorithmKind::MinWaste,
        AlgorithmKind::MaxThroughput,
        AlgorithmKind::QuantizedBucketing,
        AlgorithmKind::GreedyBucketingIncremental,
        AlgorithmKind::ExhaustiveBucketing,
        AlgorithmKind::KMeansBucketing,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_conserves_tasks_under_arbitrary_configs(
        churn in arb_churn(),
        arrival in arb_arrival(),
        policy in arb_policy(),
        algorithm in arb_algorithm(),
        n in 20usize..70,
        seed in 0u64..1000,
        instant in any::<bool>(),
    ) {
        let wf = SyntheticKind::Bimodal.catalog_workflow().spec(seed).tasks(n).materialize().unwrap();
        let config = SimConfig {
            churn,
            arrival,
            queue_policy: policy,
            enforcement: if instant {
                EnforcementModel::InstantPeak
            } else {
                EnforcementModel::LinearRamp
            },
            record_log: true,
            track_utilization: true,
            ..SimConfig::paper_like(seed)
        };
        let res = simulate(&wf, algorithm, config);

        // Every task completes exactly once.
        prop_assert_eq!(res.metrics.len(), n);
        let mut ids: Vec<u64> = res.metrics.outcomes().iter().map(|o| o.task.0).collect();
        ids.sort_unstable();
        prop_assert!(ids.iter().enumerate().all(|(i, &id)| id == i as u64));

        // Structural integrity of every outcome.
        for o in res.metrics.outcomes() {
            prop_assert!(o.check().is_ok(), "{:?}", o.check());
        }

        // Accounting identity per dimension.
        for kind in [ResourceKind::Cores, ResourceKind::MemoryMb, ResourceKind::DiskMb] {
            let a = res.metrics.total_allocation(kind);
            let c = res.metrics.total_consumption(kind);
            let w = res.metrics.waste(kind);
            prop_assert!((a - (c + w.total())).abs() <= 1e-6 * a.max(1.0));
        }

        // The event log obeys its conservation laws and matches the counters.
        let log = res.log.expect("log enabled");
        prop_assert!(log.check_consistency().is_ok(), "{:?}", log.check_consistency());
        let dispatched = log.count(|e| matches!(e, SimEvent::TaskDispatched { .. }));
        prop_assert_eq!(dispatched, res.dispatches);

        // Utilization stays within physical bounds.
        let series = res.utilization.expect("series enabled");
        for s in series.samples() {
            for kind in [ResourceKind::Cores, ResourceKind::MemoryMb, ResourceKind::DiskMb] {
                if let Some(u) = s.utilization(kind) {
                    prop_assert!((0.0..=1.0 + 1e-9).contains(&u));
                }
            }
        }

        // Worker band respected (ramp-up may start below min).
        prop_assert!(res.worker_range.0 >= churn.initial.min(churn.min));
        prop_assert!(res.worker_range.1 <= churn.max.max(churn.initial));

        // Makespan is positive and finite.
        prop_assert!(res.makespan_s.is_finite() && res.makespan_s > 0.0);
    }

    #[test]
    fn every_task_reaches_a_terminal_state_under_faults(
        churn in arb_churn(),
        algorithm in arb_algorithm(),
        plan in arb_fault_plan(),
        n in 20usize..60,
        seed in 0u64..1000,
    ) {
        let wf = SyntheticKind::Bimodal.catalog_workflow().spec(seed).tasks(n).materialize().unwrap();
        let config = SimConfig {
            churn,
            faults: plan,
            record_log: true,
            ..SimConfig::paper_like(seed)
        };
        let (res, (trace, _events)) = Simulation::new(&wf, algorithm, config)
            .with_sink((TraceStats::new(), MemorySink::new()))
            .run_traced();

        // Conservation: every submitted task either completed or was
        // dead-lettered — nothing is lost, duplicated, or stuck forever.
        let dead = res.metrics.dead_lettered_count() as u64;
        prop_assert_eq!(res.stats.submitted, n as u64);
        prop_assert_eq!(res.stats.completions + dead, n as u64);
        prop_assert_eq!(res.metrics.len() + dead as usize, n);

        // Dead letters carry a cause and a consistent attempt history.
        for dl in res.metrics.dead_letters() {
            prop_assert!(dl.check().is_ok(), "{:?}", dl.check());
        }

        // Engine counters reconcile against the allocator's trace and the
        // event log balances, faults included.
        prop_assert!(
            res.stats.reconcile(&trace).is_ok(),
            "{:?}",
            res.stats.reconcile(&trace)
        );
        let log = res.log.expect("log enabled");
        prop_assert!(log.check_consistency().is_ok(), "{:?}", log.check_consistency());

        // Attempt budgets are honoured: no task record exceeds max_attempts.
        let cap = config.faults.max_attempts;
        if cap > 0 {
            for o in res.metrics.outcomes() {
                prop_assert!(o.attempts.len() <= cap, "{} attempts", o.attempts.len());
            }
            for dl in res.metrics.dead_letters() {
                prop_assert!(dl.attempts.len() <= cap, "{} attempts", dl.attempts.len());
            }
        }
    }

    #[test]
    fn correlated_crashes_conserve_tasks(
        churn in arb_churn(),
        algorithm in arb_algorithm(),
        rack_interval in 15.0f64..90.0,
        rack_count in 2u32..6,
        n in 20usize..50,
        seed in 0u64..1000,
    ) {
        // A whole rack goes down at once: the blast radius is larger than a
        // single crash, but conservation and log integrity must not care.
        let plan = FaultPlan {
            rack_crash_mean_interval_s: Some(rack_interval),
            rack_count,
            max_attempts: 8,
            max_unplaceable_rounds: 4,
            ..FaultPlan::none()
        };
        plan.validate().expect("plan valid by construction");
        let wf = SyntheticKind::Bimodal.catalog_workflow().spec(seed).tasks(n).materialize().unwrap();
        let config = SimConfig {
            churn,
            faults: plan,
            record_log: true,
            ..SimConfig::paper_like(seed)
        };
        let res = simulate(&wf, algorithm, config);

        let dead = res.stats.faults.dead_lettered;
        prop_assert_eq!(res.stats.submitted, n as u64);
        prop_assert_eq!(res.stats.completions + dead, n as u64);
        prop_assert_eq!(res.metrics.len() as u64 + dead, n as u64);

        // Every rack crash takes out at least the struck worker, so the
        // per-worker casualty count dominates the event count.
        let faults = &res.stats.faults;
        prop_assert!(faults.worker_crashes >= faults.rack_crashes);

        let log = res.log.expect("log enabled");
        prop_assert!(log.check_consistency().is_ok(), "{:?}", log.check_consistency());
        let crashed = log.count(|e| matches!(e, SimEvent::WorkerCrashed { .. }));
        prop_assert_eq!(crashed as u64, faults.worker_crashes);
    }

    #[test]
    fn replayed_tasks_still_reach_terminal_states(
        algorithm in arb_algorithm(),
        fraction in 0.2f64..0.8,
        rounds in 1usize..4,
        n in 20usize..50,
        seed in 0u64..1000,
    ) {
        // Flaky dispatch with a tiny retry budget dead-letters tasks early;
        // churn then recovers the pool and replay re-admits them. However
        // many replay cycles a task goes through, it must still end in
        // exactly one terminal state and the books must balance.
        let plan = FaultPlan {
            dispatch_failure_rate: 0.35,
            dispatch_backoff_s: 1.0,
            max_dispatch_retries: 1,
            max_attempts: 8,
            max_unplaceable_rounds: 2,
            replay_capacity_fraction: fraction,
            max_replay_rounds: rounds,
            ..FaultPlan::none()
        };
        plan.validate().expect("plan valid by construction");
        let wf = SyntheticKind::Bimodal.catalog_workflow().spec(seed).tasks(n).materialize().unwrap();
        let config = SimConfig {
            churn: ChurnConfig {
                initial: 5,
                min: 2,
                max: 10,
                mean_interval_s: Some(8.0),
            },
            faults: plan,
            record_log: true,
            ..SimConfig::paper_like(seed)
        };
        let res = simulate(&wf, algorithm, config);

        // Conservation holds on the *final* dead-letter count: a replayed
        // task that completes leaves the dead-letter channel for good.
        let dead = res.stats.faults.dead_lettered;
        prop_assert_eq!(res.stats.completions + dead, n as u64);
        prop_assert_eq!(res.metrics.len() as u64 + dead, n as u64);
        prop_assert!(res.stats.faults.replay_successes <= res.stats.faults.replayed);

        // The log validates the full dead-letter/replay lifecycle: no task
        // is dispatched while dead, replayed without being dead, or left
        // without a terminal state.
        let log = res.log.expect("log enabled");
        prop_assert!(log.check_consistency().is_ok(), "{:?}", log.check_consistency());
        let replayed = log.count(|e| matches!(e, SimEvent::TaskReplayed { .. }));
        prop_assert_eq!(replayed as u64, res.stats.faults.replayed);
    }

    #[test]
    fn engine_is_deterministic_in_its_seed(
        seed in 0u64..500,
        n in 20usize..50,
    ) {
        let wf = SyntheticKind::Uniform.catalog_workflow().spec(seed).tasks(n).materialize().unwrap();
        let config = SimConfig {
            record_log: true,
            ..SimConfig::paper_like(seed)
        };
        let a = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);
        let b = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);
        prop_assert_eq!(a.makespan_s, b.makespan_s);
        prop_assert_eq!(a.dispatches, b.dispatches);
        prop_assert_eq!(a.log.unwrap(), b.log.unwrap());
    }

    #[test]
    fn generated_dags_always_validate(
        shape in arb_dag_shape(),
        seed in 0u64..1000,
    ) {
        // Workflow::validate rejects self-deps, forward deps, and ragged
        // dependency lists; every generated shape must clear it, and the
        // loop-back guard must never instantiate more than its max.
        let spec = SyntheticKind::Bimodal.catalog_workflow().spec(seed).dag_shape(shape);
        let wf = spec.materialize().unwrap();
        prop_assert!(wf.validate().is_ok(), "{:?}", wf.validate());
        prop_assert!(wf.has_dependencies());

        let max = shape.structure(seed).node_count();
        let structure = shape.structure(seed);
        prop_assert_eq!(structure.total_tasks(), wf.len());
        for node in 0..max {
            // The guard bound: iterations are extra instances beyond the
            // first, and the strategy caps the shape's loopback at 3.
            prop_assert!(structure.iterations_of(node) <= 3);
        }

        // The streaming source declares the same structure it generates.
        let source = spec.stream().unwrap();
        let window = source.dependency_window();
        prop_assert!(window >= 1);
        for t in 0..wf.len() {
            let deps = source.deps_of(t);
            prop_assert_eq!(&deps[..], wf.deps_of(t));
            for &d in &deps {
                prop_assert!((t as u64 - d) as usize <= window);
            }
        }
    }

    #[test]
    fn dag_conservation_counts_instantiated_iterations_under_faults(
        shape in arb_dag_shape(),
        churn in arb_churn(),
        algorithm in arb_algorithm(),
        plan in arb_fault_plan(),
        seed in 0u64..1000,
    ) {
        // Loop-back iterations instantiate fresh tasks, so the conservation
        // identity counts the *expanded* total — and a fault-killed input
        // must cascade its dependents into the dead-letter channel rather
        // than strand them.
        let wf = SyntheticKind::Bimodal
            .catalog_workflow()
            .spec(seed)
            .dag_shape(shape)
            .materialize()
            .unwrap();
        let n = wf.len() as u64;
        let config = SimConfig {
            churn,
            faults: plan,
            record_log: true,
            ..SimConfig::paper_like(seed)
        };
        let res = simulate(&wf, algorithm, config);

        let dead = res.metrics.dead_lettered_count() as u64;
        prop_assert_eq!(res.stats.submitted, n);
        prop_assert_eq!(res.stats.completions + dead, n);
        prop_assert_eq!(res.metrics.len() as u64 + dead, n);
        for dl in res.metrics.dead_letters() {
            prop_assert!(dl.check().is_ok(), "{:?}", dl.check());
        }
        let log = res.log.expect("log enabled");
        prop_assert!(log.check_consistency().is_ok(), "{:?}", log.check_consistency());

        // Structured runs always surface critical-path stats, and the
        // submit-time bound is positive.
        let cp = res.stats.critical_path.expect("structured run has cp stats");
        prop_assert!(cp.longest_path_s > 0.0);
        prop_assert!(cp.longest_path_tasks >= 1);
    }
}
