//! Property-based tests of the simulation engine: conservation laws and log
//! consistency must hold for *any* configuration.

use proptest::prelude::*;
use tora::prelude::*;
use tora::workloads::synthetic;

fn arb_churn() -> impl Strategy<Value = ChurnConfig> {
    (
        1usize..6,
        1usize..4,
        0usize..10,
        prop::option::of(5.0f64..40.0),
    )
        .prop_map(|(initial, min, extra, interval)| {
            let max = min + extra;
            let initial = initial.clamp(1, max);
            let mean_interval_s = if initial < min {
                // Ramp-up requires churn to be enabled.
                Some(interval.unwrap_or(15.0))
            } else {
                interval
            };
            ChurnConfig {
                initial,
                min,
                max,
                mean_interval_s,
            }
        })
}

fn arb_arrival() -> impl Strategy<Value = ArrivalModel> {
    prop_oneof![
        Just(ArrivalModel::Batch),
        (0.1f64..5.0).prop_map(|m| ArrivalModel::Poisson { mean_interval_s: m }),
    ]
}

fn arb_policy() -> impl Strategy<Value = QueuePolicy> {
    prop::sample::select(QueuePolicy::ALL.to_vec())
}

fn arb_algorithm() -> impl Strategy<Value = AlgorithmKind> {
    prop::sample::select(vec![
        AlgorithmKind::WholeMachine,
        AlgorithmKind::MaxSeen,
        AlgorithmKind::MinWaste,
        AlgorithmKind::MaxThroughput,
        AlgorithmKind::QuantizedBucketing,
        AlgorithmKind::GreedyBucketingIncremental,
        AlgorithmKind::ExhaustiveBucketing,
        AlgorithmKind::KMeansBucketing,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_conserves_tasks_under_arbitrary_configs(
        churn in arb_churn(),
        arrival in arb_arrival(),
        policy in arb_policy(),
        algorithm in arb_algorithm(),
        n in 20usize..70,
        seed in 0u64..1000,
        instant in any::<bool>(),
    ) {
        let wf = synthetic::generate(SyntheticKind::Bimodal, n, seed);
        let config = SimConfig {
            churn,
            arrival,
            queue_policy: policy,
            enforcement: if instant {
                EnforcementModel::InstantPeak
            } else {
                EnforcementModel::LinearRamp
            },
            record_log: true,
            track_utilization: true,
            ..SimConfig::paper_like(seed)
        };
        let res = simulate(&wf, algorithm, config);

        // Every task completes exactly once.
        prop_assert_eq!(res.metrics.len(), n);
        let mut ids: Vec<u64> = res.metrics.outcomes().iter().map(|o| o.task.0).collect();
        ids.sort_unstable();
        prop_assert!(ids.iter().enumerate().all(|(i, &id)| id == i as u64));

        // Structural integrity of every outcome.
        for o in res.metrics.outcomes() {
            prop_assert!(o.check().is_ok(), "{:?}", o.check());
        }

        // Accounting identity per dimension.
        for kind in [ResourceKind::Cores, ResourceKind::MemoryMb, ResourceKind::DiskMb] {
            let a = res.metrics.total_allocation(kind);
            let c = res.metrics.total_consumption(kind);
            let w = res.metrics.waste(kind);
            prop_assert!((a - (c + w.total())).abs() <= 1e-6 * a.max(1.0));
        }

        // The event log obeys its conservation laws and matches the counters.
        let log = res.log.expect("log enabled");
        prop_assert!(log.check_consistency().is_ok(), "{:?}", log.check_consistency());
        let dispatched = log.count(|e| matches!(e, SimEvent::TaskDispatched { .. }));
        prop_assert_eq!(dispatched, res.dispatches);

        // Utilization stays within physical bounds.
        let series = res.utilization.expect("series enabled");
        for s in series.samples() {
            for kind in [ResourceKind::Cores, ResourceKind::MemoryMb, ResourceKind::DiskMb] {
                if let Some(u) = s.utilization(kind) {
                    prop_assert!((0.0..=1.0 + 1e-9).contains(&u));
                }
            }
        }

        // Worker band respected (ramp-up may start below min).
        prop_assert!(res.worker_range.0 >= churn.initial.min(churn.min));
        prop_assert!(res.worker_range.1 <= churn.max.max(churn.initial));

        // Makespan is positive and finite.
        prop_assert!(res.makespan_s.is_finite() && res.makespan_s > 0.0);
    }

    #[test]
    fn engine_is_deterministic_in_its_seed(
        seed in 0u64..500,
        n in 20usize..50,
    ) {
        let wf = synthetic::generate(SyntheticKind::Uniform, n, seed);
        let config = SimConfig {
            record_log: true,
            ..SimConfig::paper_like(seed)
        };
        let a = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);
        let b = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);
        prop_assert_eq!(a.makespan_s, b.makespan_s);
        prop_assert_eq!(a.dispatches, b.dispatches);
        prop_assert_eq!(a.log.unwrap(), b.log.unwrap());
    }
}
