//! Property-based tests over the core data structures and the full
//! allocation pipeline.

use proptest::prelude::*;
use tora::alloc::bucket::BucketSet;
use tora::alloc::cost::{exhaustive_cost, greedy_cost};
use tora::alloc::exhaustive::ExhaustiveBucketing;
use tora::alloc::greedy::GreedyBucketing;
use tora::alloc::partition::Partitioner;
use tora::alloc::record::RecordList;
use tora::prelude::*;

fn record_list() -> impl Strategy<Value = RecordList> {
    prop::collection::vec((1.0f64..10_000.0, 0.1f64..100.0), 1..120)
        .prop_map(|pairs| pairs.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn greedy_partition_satisfies_bucket_invariants(list in record_list()) {
        let gb = GreedyBucketing::new();
        let breaks = gb.partition(list.sorted());
        let set = BucketSet::from_breaks(list.sorted(), &breaks);
        prop_assert!(set.check_invariants(list.sorted()).is_ok());
    }

    #[test]
    fn exhaustive_partition_satisfies_bucket_invariants(list in record_list()) {
        let eb = ExhaustiveBucketing::new();
        let breaks = eb.partition(list.sorted());
        let set = BucketSet::from_breaks(list.sorted(), &breaks);
        prop_assert!(set.check_invariants(list.sorted()).is_ok());
        prop_assert!(set.len() <= 10, "bucket cap exceeded: {}", set.len());
    }

    #[test]
    fn greedy_fast_scans_match_faithful(list in record_list()) {
        // The prefix-sum default and the incremental ablation scan must pick
        // exactly the break points the paper-faithful quadratic scan picks,
        // and the chosen configuration must cost bit-for-bit the same when
        // scored through the canonical bucket-set kernel.
        let faithful = GreedyBucketing::faithful().partition(list.sorted());
        let prefix = GreedyBucketing::new().partition(list.sorted());
        let incremental = GreedyBucketing::incremental().partition(list.sorted());
        prop_assert_eq!(&faithful, &prefix);
        prop_assert_eq!(&faithful, &incremental);
        let cost_of = |breaks: &[usize]| {
            exhaustive_cost(&BucketSet::from_breaks(list.sorted(), breaks))
        };
        prop_assert_eq!(cost_of(&faithful).to_bits(), cost_of(&prefix).to_bits());
    }

    #[test]
    fn exhaustive_fast_matches_faithful(list in record_list()) {
        // Same contract for Exhaustive Bucketing: the scratch-buffer fast
        // path must be an observationally identical drop-in for the
        // bucket-set-per-candidate faithful path.
        let faithful = ExhaustiveBucketing::faithful().partition(list.sorted());
        let fast = ExhaustiveBucketing::new().partition(list.sorted());
        prop_assert_eq!(&faithful, &fast);
        let cost_of = |breaks: &[usize]| {
            exhaustive_cost(&BucketSet::from_breaks(list.sorted(), breaks))
        };
        prop_assert_eq!(cost_of(&faithful).to_bits(), cost_of(&fast).to_bits());
    }

    #[test]
    fn exhaustive_choice_never_worse_than_single_bucket(list in record_list()) {
        let eb = ExhaustiveBucketing::new();
        let breaks = eb.partition(list.sorted());
        let chosen = exhaustive_cost(&BucketSet::from_breaks(list.sorted(), &breaks));
        let single = exhaustive_cost(&BucketSet::single(list.sorted()));
        prop_assert!(chosen <= single + 1e-9 * single.abs().max(1.0));
    }

    #[test]
    fn costs_are_finite_and_nonnegative(list in record_list()) {
        let n = list.len();
        let records = list.sorted();
        // Greedy cost at a few break positions.
        for brk in [0, n / 2, n - 1] {
            let c = greedy_cost(records, 0, brk, n - 1);
            prop_assert!(c.is_finite() && c >= -1e-9, "greedy cost {c}");
        }
        // Exhaustive cost of the chosen configuration.
        let breaks = ExhaustiveBucketing::new().partition(records);
        let c = exhaustive_cost(&BucketSet::from_breaks(records, &breaks));
        prop_assert!(c.is_finite() && c >= -1e-9, "exhaustive cost {c}");
    }

    #[test]
    fn sampling_always_returns_a_valid_bucket(list in record_list(), u in 0.0f64..1.0) {
        let breaks = ExhaustiveBucketing::new().partition(list.sorted());
        let set = BucketSet::from_breaks(list.sorted(), &breaks);
        let idx = set.sample(u).expect("non-empty set samples");
        prop_assert!(idx < set.len());
        // sample_above must respect the floor.
        if let Some(j) = set.sample_above(set.buckets()[idx].rep, u) {
            prop_assert!(set.buckets()[j].rep > set.buckets()[idx].rep);
        }
    }

    #[test]
    fn allocator_terminates_for_any_feasible_demand(
        peaks in prop::collection::vec(
            (0.1f64..16.0, 1.0f64..60_000.0, 1.0f64..60_000.0),
            11..60
        ),
        seed in 0u64..1_000,
    ) {
        let mut allocator = Allocator::new(AlgorithmKind::ExhaustiveBucketing, seed);
        let category = CategoryId(0);
        for (i, (c, m, d)) in peaks.iter().enumerate() {
            let task = TaskSpec::new(i as u64, 0, ResourceVector::new(*c, *m, *d), 10.0);
            // Drive the predict→retry loop to success before observing.
            let demand = task.peak;
            let mut alloc = allocator.predict_first(category);
            let mut attempts = 0;
            while !alloc.dominates(&demand) {
                let exhausted = alloc.exceeded_by(&demand);
                alloc = allocator.predict_retry(category, &alloc, &exhausted);
                attempts += 1;
                prop_assert!(attempts < 64, "no convergence for {demand}");
            }
            allocator.observe(&ResourceRecord::from_task(&task));
        }
    }

    #[test]
    fn replay_conserves_tasks_and_identities(
        n in 20usize..80,
        seed in 0u64..500,
    ) {
        let wf = SyntheticKind::Bimodal.catalog_workflow().spec(seed).tasks(n).materialize().unwrap();
        let m = replay(&wf, AlgorithmKind::GreedyBucketingIncremental,
                       EnforcementModel::LinearRamp, seed);
        prop_assert_eq!(m.len(), n);
        for kind in [ResourceKind::Cores, ResourceKind::MemoryMb, ResourceKind::DiskMb] {
            let a = m.total_allocation(kind);
            let c = m.total_consumption(kind);
            let w = m.waste(kind);
            prop_assert!((a - (c + w.total())).abs() <= 1e-6 * a.max(1.0));
            let awe = m.awe(kind).unwrap();
            prop_assert!(awe > 0.0 && awe <= 1.0);
        }
    }

    #[test]
    fn feature_bin_fallback_never_predicts_below_the_category_floor(
        samples in prop::collection::vec((0.0f64..1.0, 1.0f64..60_000.0), 1..100),
        signal in 0.0f64..1.0,
        u in 0.0f64..1.0,
    ) {
        // Whatever mix of bins the observations land in — including bins
        // with too little support, which fall back to the category-global
        // answer — a first prediction must never dip below the smallest
        // value ever observed for the category. An estimator conditioning
        // on a noisy pre-run signal may bin poorly; it must not use that as
        // license to under-allocate below what the category has proven.
        use tora::alloc::{FeatureBinned, ValueEstimator};
        let mut fb = FeatureBinned::new();
        for (sig, value) in &samples {
            fb.observe_ctx(&TaskFeatures::with_input_signal(*sig), *value, 1.0);
        }
        let floor = samples.iter().map(|(_, v)| *v).fold(f64::INFINITY, f64::min);
        let ctx = TaskContext::new(CategoryId(0), TaskFeatures::with_input_signal(signal));
        let p = fb.predict_first(&ctx, u).expect("non-empty estimator answers");
        prop_assert!(
            p.value >= floor,
            "prediction {} below category floor {floor}",
            p.value
        );
    }

    #[test]
    fn quantile_is_monotone(list in record_list(), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = list.quantile(lo).unwrap();
        let b = list.quantile(hi).unwrap();
        prop_assert!(a <= b);
        prop_assert!(b <= list.max_value().unwrap());
        prop_assert!(a >= list.min_value().unwrap());
    }
}
