//! End-to-end assertions on the paper's headline qualitative results:
//! who wins where, and the §V-C talking points.

use tora::prelude::*;

fn small_sim(workflow: &Workflow, algorithm: AlgorithmKind, seed: u64) -> SimResult {
    // A scaled-down paper-like setting keeps debug-mode test time sane.
    let config = SimConfig {
        churn: ChurnConfig {
            initial: 4,
            min: 8,
            max: 16,
            mean_interval_s: Some(15.0),
        },
        arrival: ArrivalModel::Poisson {
            mean_interval_s: 1.5,
        },
        ..SimConfig::paper_like(seed)
    };
    simulate(workflow, algorithm.fast_equivalent(), config)
}

#[test]
fn bucketing_beats_whole_machine_on_every_synthetic() {
    for kind in [
        SyntheticKind::Normal,
        SyntheticKind::Bimodal,
        SyntheticKind::Uniform,
    ] {
        let wf = kind
            .catalog_workflow()
            .spec(9)
            .tasks(300)
            .materialize()
            .unwrap();
        let eb = small_sim(&wf, AlgorithmKind::ExhaustiveBucketing, 9);
        let wm = small_sim(&wf, AlgorithmKind::WholeMachine, 9);
        for res in [
            ResourceKind::Cores,
            ResourceKind::MemoryMb,
            ResourceKind::DiskMb,
        ] {
            let eb_awe = eb.metrics.awe(res).unwrap();
            let wm_awe = wm.metrics.awe(res).unwrap();
            assert!(
                eb_awe > wm_awe,
                "{kind:?}/{res}: EB {eb_awe} should beat whole machine {wm_awe}"
            );
        }
    }
}

#[test]
fn whole_machine_never_fails_an_allocation() {
    let wf = SyntheticKind::Exponential
        .catalog_workflow()
        .spec(4)
        .tasks(300)
        .materialize()
        .unwrap();
    let res = small_sim(&wf, AlgorithmKind::WholeMachine, 4);
    assert_eq!(res.metrics.total_retries(), 0);
    for outcome in res.metrics.outcomes() {
        assert_eq!(outcome.attempts.len(), 1);
    }
}

#[test]
fn topeft_disk_bucketing_beats_max_seen_rounding() {
    // §V-C: constant 306 MB disk → bucketing allocates exactly 306 in the
    // steady state; Max Seen's 250-MB histogram rounds to 500.
    let wf = PaperWorkflow::TopEft
        .spec(2)
        .category_tasks(vec![50, 800, 30])
        .materialize()
        .unwrap();
    let eb = small_sim(&wf, AlgorithmKind::ExhaustiveBucketing, 2);
    let ms = small_sim(&wf, AlgorithmKind::MaxSeen, 2);
    let eb_disk = eb.metrics.awe(ResourceKind::DiskMb).unwrap();
    let ms_disk = ms.metrics.awe(ResourceKind::DiskMb).unwrap();
    assert!(
        eb_disk > ms_disk,
        "EB disk {eb_disk} should beat Max Seen {ms_disk}"
    );
    assert!(eb_disk > 0.6, "EB disk efficiency {eb_disk} should be high");
}

#[test]
fn colmena_disk_is_single_digit_for_all_algorithms() {
    // §V-C: ~10 MB disk usage against the exploratory floors makes every
    // algorithm's disk efficiency collapse on ColmenaXTB.
    let wf = PaperWorkflow::ColmenaXtb
        .spec(6)
        .category_tasks(vec![80, 350])
        .materialize()
        .unwrap();
    for alg in AlgorithmKind::PAPER_SET {
        let res = small_sim(&wf, alg, 6);
        let disk = res.metrics.awe(ResourceKind::DiskMb).unwrap();
        assert!(disk < 0.10, "{alg}: ColmenaXTB disk AWE {disk}");
    }
}

#[test]
fn exponential_is_the_hardest_synthetic_for_bucketing() {
    let seeds = 3u64;
    let mean_awe = |kind: SyntheticKind| {
        (0..seeds)
            .map(|s| {
                let wf = kind
                    .catalog_workflow()
                    .spec(s)
                    .tasks(400)
                    .materialize()
                    .unwrap();
                small_sim(&wf, AlgorithmKind::ExhaustiveBucketing, s)
                    .metrics
                    .awe(ResourceKind::MemoryMb)
                    .unwrap()
            })
            .sum::<f64>()
            / seeds as f64
    };
    let exp = mean_awe(SyntheticKind::Exponential);
    let normal = mean_awe(SyntheticKind::Normal);
    let uniform = mean_awe(SyntheticKind::Uniform);
    assert!(
        exp < normal && exp < uniform,
        "exponential {exp} should trail normal {normal} and uniform {uniform}"
    );
}

#[test]
fn quantized_bucketing_under_allocates_by_design() {
    // Fig. 6: Quantized Bucketing carries the largest failed-allocation
    // share — the median-first policy fails roughly half its first tries.
    let wf = SyntheticKind::Normal
        .catalog_workflow()
        .spec(12)
        .tasks(300)
        .materialize()
        .unwrap();
    let qb = small_sim(&wf, AlgorithmKind::QuantizedBucketing, 12);
    let ms = small_sim(&wf, AlgorithmKind::MaxSeen, 12);
    let qb_share = qb.metrics.waste(ResourceKind::MemoryMb).failed_share();
    let ms_share = ms.metrics.waste(ResourceKind::MemoryMb).failed_share();
    assert!(
        qb_share > ms_share,
        "QB failed share {qb_share} should exceed Max Seen's {ms_share}"
    );
    assert!(qb.metrics.total_retries() > ms.metrics.total_retries());
}

#[test]
fn larger_workflows_amortize_better() {
    // §VII hypothesis at integration-test scale: 4x more tasks, same
    // distribution → efficiency should not degrade (and typically improves).
    let small = PaperWorkflow::TopEft
        .spec(8)
        .category_tasks(vec![30, 300, 20])
        .materialize()
        .unwrap();
    let large = PaperWorkflow::TopEft
        .spec(8)
        .category_tasks(vec![120, 1200, 80])
        .materialize()
        .unwrap();
    let s = small_sim(&small, AlgorithmKind::ExhaustiveBucketing, 8)
        .metrics
        .awe(ResourceKind::DiskMb)
        .unwrap();
    let l = small_sim(&large, AlgorithmKind::ExhaustiveBucketing, 8)
        .metrics
        .awe(ResourceKind::DiskMb)
        .unwrap();
    assert!(l > s - 0.05, "large {l} should not trail small {s} by much");
}
