//! Convergence behaviour: the §VII steady-state claims, measured.

use tora::metrics::{rolling_awe, steady_state_onset};
use tora::prelude::*;

#[test]
fn bucketing_converges_to_a_steady_state() {
    // §VII: the bucketing algorithms "quickly converge to a steady state on
    // workflows of around 4,500 tasks" — check onset on a 1,200-task run.
    let wf = SyntheticKind::Normal
        .catalog_workflow()
        .spec(4)
        .tasks(1200)
        .materialize()
        .unwrap();
    let res = simulate(
        &wf,
        AlgorithmKind::ExhaustiveBucketing,
        SimConfig::paper_like(4),
    );
    // Bucket sampling keeps the trajectory noisy, so the band is generous;
    // what matters is that the run settles well before its end.
    let onset = steady_state_onset(&res.metrics, ResourceKind::MemoryMb, 120, 0.15)
        .expect("run should settle");
    assert!(
        onset < 900,
        "steady state should arrive well before the end (onset {onset})"
    );
}

#[test]
fn steady_state_beats_the_exploration_phase() {
    // The rolling AWE of the last quarter should beat the first window,
    // which pays the exploratory probes.
    let wf = PaperWorkflow::TopEft
        .spec(9)
        .category_tasks(vec![60, 900, 40])
        .materialize()
        .unwrap();
    let res = simulate(
        &wf,
        AlgorithmKind::ExhaustiveBucketing,
        SimConfig::paper_like(9),
    );
    let points = rolling_awe(&res.metrics, ResourceKind::DiskMb, 100);
    assert!(points.len() >= 4);
    let first = points.first().unwrap().1;
    let tail_start = points.len() * 3 / 4;
    let tail: f64 =
        points[tail_start..].iter().map(|p| p.1).sum::<f64>() / (points.len() - tail_start) as f64;
    assert!(
        tail > first,
        "steady-state disk AWE {tail} should beat the exploratory window {first}"
    );
    // TopEFT disk converges near the optimum (constant 306 MB consumption).
    assert!(tail > 0.8, "steady-state disk AWE {tail}");
}

#[test]
fn phase_change_is_relearned() {
    // The trimodal workflow moves its distribution twice; the rolling AWE
    // must not collapse after the phase changes (the significance weighting
    // re-learns). Compare against a frozen-oracle-free reference: the final
    // third's rolling AWE should be in the same band as the first third's.
    let wf = SyntheticKind::PhasingTrimodal
        .catalog_workflow()
        .spec(6)
        .tasks(1200)
        .materialize()
        .unwrap();
    let res = simulate(
        &wf,
        AlgorithmKind::ExhaustiveBucketing,
        SimConfig::paper_like(6),
    );
    let points = rolling_awe(&res.metrics, ResourceKind::MemoryMb, 120);
    let third = points.len() / 3;
    let mean = |s: &[(u64, f64)]| s.iter().map(|p| p.1).sum::<f64>() / s.len() as f64;
    let early = mean(&points[..third]);
    let late = mean(&points[2 * third..]);
    assert!(
        late > early * 0.7,
        "late-phase AWE {late} collapsed vs early {early}"
    );
}
