//! End-to-end tests of the `tora` command-line interface.

use std::process::Command;

fn tora(args: &[&str]) -> (bool, String, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_tora"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

#[test]
fn help_and_listings() {
    let (ok, out, _) = tora(&["--help"]);
    assert!(ok);
    assert!(out.contains("simulate"));

    let (ok, out, _) = tora(&["algorithms"]);
    assert!(ok);
    for label in [
        "whole-machine",
        "max-seen",
        "min-waste",
        "max-throughput",
        "quantized-bucketing",
        "greedy-bucketing",
        "exhaustive-bucketing",
    ] {
        assert!(out.contains(label), "missing {label}");
    }

    let (ok, out, _) = tora(&["workflows"]);
    assert!(ok);
    assert!(out.contains("colmena-xtb"));
    assert!(out.contains("topeft"));
    assert!(out.contains("trimodal"));
}

#[test]
fn generate_emits_loadable_json() {
    let dir = std::env::temp_dir().join("tora-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.json");
    let path_str = path.to_str().unwrap();
    let (ok, _, err) = tora(&[
        "generate", "normal", "--tasks", "40", "--seed", "5", "--out", path_str,
    ]);
    assert!(ok, "{err}");
    let wf = tora::workloads::io::load(&path).unwrap();
    assert_eq!(wf.len(), 40);

    // The generated file round-trips through `replay`.
    let (ok, out, err) = tora(&["replay", path_str, "--algorithm", "max-seen"]);
    assert!(ok, "{err}");
    assert!(out.contains("max-seen"), "{out}");
    assert!(out.contains("40 tasks"), "{out}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn simulate_reports_metrics_and_convergence() {
    let (ok, out, err) = tora(&[
        "simulate",
        "bimodal",
        "--tasks",
        "120",
        "--seed",
        "3",
        "--workers",
        "fixed:10",
        "--arrival",
        "poisson:1.0",
        "--policy",
        "fifo-backfill",
        "--convergence",
    ]);
    assert!(ok, "{err}");
    assert!(out.contains("120 tasks"), "{out}");
    assert!(out.contains("memory"), "{out}");
    assert!(out.contains("rolling memory AWE"), "{out}");
    assert!(out.contains("attempts per task"), "{out}");
}

#[test]
fn simulate_writes_event_log() {
    let dir = std::env::temp_dir().join("tora-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("events.jsonl");
    let path_str = path.to_str().unwrap();
    let (ok, _, err) = tora(&[
        "simulate", "uniform", "--tasks", "60", "--seed", "2", "--log", path_str,
    ]);
    assert!(ok, "{err}");
    let text = std::fs::read_to_string(&path).unwrap();
    let log = tora::sim::EventLog::from_jsonl(&text).unwrap();
    log.check_consistency().unwrap();
    assert!(log.len() > 120); // ≥ submit + dispatch + finish per task
    std::fs::remove_file(&path).ok();
}

#[test]
fn dag_and_mix_options() {
    let (ok, out, err) = tora(&[
        "replay",
        "topeft",
        "--dag",
        "--seed",
        "2",
        "--algorithm",
        "max-seen",
    ]);
    assert!(ok, "{err}");
    assert!(out.contains("4569 tasks"), "{out}");

    let (ok, _, err) = tora(&["simulate", "normal", "--tasks", "4"]);
    assert!(ok, "{err}");

    let (ok, _, err) = tora(&["simulate", "normal", "--dag"]);
    assert!(!ok);
    assert!(err.contains("topeft"), "{err}");

    let (ok, _, err) = tora(&["simulate", "normal", "--tasks", "40", "--mix", "2:0.5"]);
    assert!(!ok, "{err}");
}

#[test]
fn trace_emits_jsonl_and_reconciles() {
    let dir = std::env::temp_dir().join("tora-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("alloc-events.jsonl");
    let path_str = path.to_str().unwrap();
    let (ok, out, err) = tora(&[
        "trace",
        "bimodal",
        "--tasks",
        "80",
        "--seed",
        "3",
        "--workers",
        "fixed:8",
        "--out",
        path_str,
    ]);
    assert!(ok, "{err}");
    assert!(out.contains("reconciliation OK"), "{out}");
    assert!(out.contains("allocation events by category"), "{out}");
    // Every line of the dump is one well-formed event.
    let text = std::fs::read_to_string(&path).unwrap();
    let events: Vec<tora::prelude::AllocEvent> = text
        .lines()
        .map(|l| serde_json::from_str(l).expect("valid event JSON"))
        .collect();
    assert!(!events.is_empty());
    assert!(out.contains(&format!("{} events", events.len())), "{out}");
    std::fs::remove_file(&path).ok();

    // Without --out the events go to stdout and the summary to stderr.
    let (ok, out, err) = tora(&[
        "trace",
        "bimodal",
        "--tasks",
        "40",
        "--seed",
        "3",
        "--workers",
        "fixed:8",
    ]);
    assert!(ok, "{err}");
    assert!(out.lines().all(|l| l.starts_with('{')), "{out}");
    assert!(err.contains("reconciliation OK"), "{err}");
}

#[test]
fn chaos_smoke_is_deterministic_and_conserves() {
    let (ok, out, err) = tora(&["chaos", "--quick"]);
    assert!(ok, "{err}");
    assert!(out.contains("chaos smoke OK"), "{out}");
    assert!(out.contains("dead-lettered"), "{out}");

    // A full run with an explicit preset and JSON dump round-trips.
    let dir = std::env::temp_dir().join("tora-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("chaos.json");
    let path_str = path.to_str().unwrap();
    let (ok, out, err) = tora(&[
        "chaos", "bimodal", "--tasks", "100", "--seed", "4", "--plan", "heavy", "--out", path_str,
    ]);
    assert!(ok, "{err}");
    assert!(out.contains("fault report"), "{out}");
    let text = std::fs::read_to_string(&path).unwrap();
    let report: serde_json::Value = serde_json::from_str(&text).unwrap();
    let count = |key: &str| report.get(key).and_then(|v| v.as_u64()).unwrap();
    assert_eq!(
        report.get("conservation_ok").and_then(|v| v.as_bool()),
        Some(true)
    );
    assert_eq!(
        count("submitted"),
        count("completed") + count("dead_lettered")
    );
    std::fs::remove_file(&path).ok();

    let (ok, _, err) = tora(&["chaos", "bimodal", "--plan", "nope"]);
    assert!(!ok);
    assert!(err.contains("unknown --plan"), "{err}");
}

#[test]
fn bad_input_fails_cleanly() {
    let (ok, _, err) = tora(&["simulate", "nonexistent-workflow"]);
    assert!(!ok);
    assert!(err.contains("unknown workflow"), "{err}");

    let (ok, _, err) = tora(&["replay", "normal", "--algorithm", "nope"]);
    assert!(!ok);
    assert!(err.contains("unknown algorithm"), "{err}");

    let (ok, _, err) = tora(&["simulate", "topeft", "--tasks", "5"]);
    assert!(!ok);
    assert!(err.contains("synthetic"), "{err}");

    let (ok, _, err) = tora(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown command"), "{err}");

    let (ok, _, err) = tora(&["simulate", "normal", "--workers", "fixed:0"]);
    assert!(!ok);
    assert!(err.contains("n ≥ 1"), "{err}");
}
