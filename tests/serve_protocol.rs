//! `tora serve` protocol tests: golden transcripts through the real
//! binary, per-tenant allocator isolation, and kill-safe snapshot/restore.
//!
//! The daemon's contract is determinism at the byte level: the response
//! stream is a pure function of the request stream, tenants cannot observe
//! each other's allocator state, and a daemon restored from a snapshot
//! answers the remaining requests exactly as the uninterrupted daemon would
//! have.

use std::io::Write as _;
use std::process::{Command, Stdio};

use tora::serve::{Response, ServeConfig, Session};

/// Pipe `input` through `tora serve <args>` and return stdout.
fn serve_stdout(args: &[&str], input: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_tora"))
        .arg("serve")
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("requests written");
    let output = child.wait_with_output().expect("binary runs");
    assert!(
        output.status.success(),
        "tora serve {args:?} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

/// Drive an in-process session, returning one serialized response per line.
fn drive(session: &mut Session, requests: &[String]) -> Vec<String> {
    requests
        .iter()
        .map(|line| {
            let (response, _) = session.handle_line(line);
            serde_json::to_string(&response).expect("responses serialize")
        })
        .collect()
}

fn config() -> ServeConfig {
    ServeConfig {
        workers: 20,
        threads: 1,
    }
}

/// A workload-manager conversation for one tenant: open, a workload burst,
/// completions, a fault with escalation, advisory predictions, a rebucket.
fn tenant_script(tenant: &str, seed: u64) -> Vec<String> {
    let mut lines = vec![
        format!(
            r#"{{"Open":{{"tenant":"{tenant}","algorithm":"greedy-bucketing","seed":{seed}}}}}"#
        ),
        format!(
            r#"{{"Workload":{{"tenant":"{tenant}","workflow":"bimodal","tasks":16,"seed":{seed}}}}}"#
        ),
    ];
    for task in 0..12u64 {
        lines.push(format!(
            r#"{{"Complete":{{"tenant":"{tenant}","task":{task},"cores":0.9,"memory_mb":{mem}.0,"disk_mb":120.0,"duration_s":7.5}}}}"#,
            mem = 400 + 50 * task
        ));
    }
    lines.push(format!(
        r#"{{"Fault":{{"tenant":"{tenant}","task":12,"kind":"exhaustion","exhausted":["memory"]}}}}"#
    ));
    lines.push(format!(
        r#"{{"Predict":{{"tenant":"{tenant}","categories":[0,1,0]}}}}"#
    ));
    lines.push(format!(r#"{{"Rebucket":{{"tenant":"{tenant}"}}}}"#));
    lines
}

#[test]
fn golden_transcript_is_byte_stable_across_runs() {
    let mut input = tenant_script("wf", 7).join("\n");
    input.push_str("\n{\"Stats\":{}}\n{\"Shutdown\":{}}\n");
    let args = ["--workers", "20", "--threads", "1"];
    let first = serve_stdout(&args, &input);
    let second = serve_stdout(&args, &input);
    assert_eq!(first, second, "same requests, different responses");
    // One response line per request line, ending with the shutdown ack.
    let lines: Vec<&str> = first.lines().collect();
    assert_eq!(lines.len(), input.lines().count());
    assert_eq!(lines.last(), Some(&r#"{"Bye":{}}"#));
    // The transcript carries the full conversation shape.
    for tag in [
        "Opened",
        "Submitted",
        "Completed",
        "Retried",
        "Predictions",
        "Rebucketed",
        "StatsReport",
    ] {
        assert!(
            lines.iter().any(|l| l.contains(&format!("{{\"{tag}\""))),
            "no {tag} response in transcript:\n{first}"
        );
    }
    // Thread count must not change a single byte.
    let threaded = serve_stdout(&["--workers", "20", "--threads", "4"], &input);
    assert_eq!(first, threaded, "responses depend on --threads");
}

/// Two tenants on one daemon: tenant a's responses must be byte-identical
/// whether or not tenant b is active — per-tenant allocators share nothing,
/// and with capacity for both, admission never entangles their responses.
#[test]
fn a_tenant_is_isolated_from_its_neighbors() {
    let a_script = tenant_script("a", 7);
    let mut solo = Session::new(&config());
    let solo_responses = drive(&mut solo, &a_script);

    let mut shared = Session::new(&config());
    let b_script = tenant_script("b", 99);
    // Interleave: b's traffic lands between every one of a's requests.
    let mut shared_responses = Vec::new();
    for (i, a_line) in a_script.iter().enumerate() {
        if let Some(b_line) = b_script.get(i) {
            drive(&mut shared, std::slice::from_ref(b_line));
        }
        shared_responses.extend(drive(&mut shared, std::slice::from_ref(a_line)));
    }
    assert_eq!(
        solo_responses, shared_responses,
        "tenant a observed tenant b's presence"
    );
}

/// Snapshot at an arbitrary cut point, "kill" the daemon (drop it), restore
/// from the file, and replay the remaining requests: the tail responses and
/// the final state must be byte-identical to the uninterrupted daemon's.
#[test]
fn snapshot_restore_resumes_byte_identically() {
    let mut script = tenant_script("wf", 7);
    script.extend(tenant_script("other", 13));
    for cut in [3usize, 15, script.len() - 1] {
        let mut uninterrupted = Session::new(&config());
        let all_responses = drive(&mut uninterrupted, &script);

        let mut doomed = Session::new(&config());
        drive(&mut doomed, &script[..cut]);
        let snapshot = doomed.snapshot_json().expect("snapshot serializes");
        drop(doomed); // the kill

        let mut restored = Session::restore(&config(), &snapshot).expect("snapshot restores");
        // Restore must be loss-free: re-snapshotting before any new request
        // reproduces the file exactly.
        assert_eq!(
            restored.snapshot_json().expect("snapshot serializes"),
            snapshot,
            "cut {cut}: snapshot → restore → snapshot is not the identity"
        );
        let tail_responses = drive(&mut restored, &script[cut..]);
        assert_eq!(
            tail_responses,
            all_responses[cut..],
            "cut {cut}: restored daemon diverged from the uninterrupted one"
        );
        assert_eq!(
            restored.snapshot_json().expect("snapshot serializes"),
            uninterrupted.snapshot_json().expect("snapshot serializes"),
            "cut {cut}: final states diverged"
        );
    }
}

/// A conversation for a feature-conditioned tenant: every submission
/// carries an input-size signal and a DAG depth, the measured peaks track
/// the signal (low signal → small memory, high → large), and a memory
/// exhaustion forces a journaled retry.
fn featured_script(tenant: &str, seed: u64) -> Vec<String> {
    let mut lines = vec![format!(
        r#"{{"Open":{{"tenant":"{tenant}","algorithm":"feature-binned","seed":{seed}}}}}"#
    )];
    for task in 0..10u64 {
        lines.push(format!(
            r#"{{"Submit":{{"tenant":"{tenant}","task":{task},"category":0,"input_signal":0.{task},"depth":{depth}}}}}"#,
            depth = task % 4
        ));
    }
    for task in 0..8u64 {
        lines.push(format!(
            r#"{{"Complete":{{"tenant":"{tenant}","task":{task},"cores":0.8,"memory_mb":{mem}.0,"disk_mb":90.0,"duration_s":5.0}}}}"#,
            mem = 500 + 600 * task
        ));
    }
    lines.push(format!(
        r#"{{"Fault":{{"tenant":"{tenant}","task":8,"kind":"exhaustion","exhausted":["memory"]}}}}"#
    ));
    lines.push(format!(
        r#"{{"Predict":{{"tenant":"{tenant}","categories":[0,0]}}}}"#
    ));
    lines.push(format!(r#"{{"Rebucket":{{"tenant":"{tenant}"}}}}"#));
    lines
}

/// Satellite of the TaskContext refactor: a tenant running a
/// feature-conditioned algorithm journals the full context (signal + depth)
/// with every Predict op, so a restored daemon rebuilds the *same bins* and
/// answers the remaining conversation byte-identically. Cuts are placed
/// mid-submission, mid-completion, and after the fault so the journal is
/// replayed at every interesting length.
#[test]
fn a_feature_conditioned_tenant_survives_snapshot_restore() {
    let script = featured_script("ml", 21);
    for cut in [4usize, 14, script.len() - 1] {
        let mut uninterrupted = Session::new(&config());
        let all_responses = drive(&mut uninterrupted, &script);

        let mut doomed = Session::new(&config());
        drive(&mut doomed, &script[..cut]);
        let snapshot = doomed.snapshot_json().expect("snapshot serializes");
        drop(doomed);

        // The journal must carry the feature vector, not just the category:
        // a snapshot that dropped the context would still replay, but into
        // different bins.
        assert!(
            snapshot.contains("input_signal"),
            "cut {cut}: journaled ops lost the task context"
        );

        let mut restored = Session::restore(&config(), &snapshot).expect("snapshot restores");
        assert_eq!(
            restored.snapshot_json().expect("snapshot serializes"),
            snapshot,
            "cut {cut}: snapshot → restore → snapshot is not the identity"
        );
        let tail_responses = drive(&mut restored, &script[cut..]);
        assert_eq!(
            tail_responses,
            all_responses[cut..],
            "cut {cut}: restored feature-conditioned tenant diverged"
        );
        assert_eq!(
            restored.snapshot_json().expect("snapshot serializes"),
            uninterrupted.snapshot_json().expect("snapshot serializes"),
            "cut {cut}: final states diverged"
        );
    }
}

/// The same snapshot round trip through the real binary and the `--restore`
/// flag: a daemon killed after `Snapshot` resumes and finishes the
/// conversation exactly as an uninterrupted daemon does.
#[test]
fn the_binary_restores_from_a_snapshot_file() {
    let dir = std::env::temp_dir().join(format!("tora_serve_restore_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let snap = dir.join("daemon.json");
    let snap_path = snap.to_str().expect("utf-8 temp path");

    let script = tenant_script("wf", 7);
    let (head, tail) = script.split_at(5);
    let args = ["--workers", "20", "--threads", "1"];

    // Uninterrupted reference conversation.
    let mut full_input = script.join("\n");
    full_input.push_str("\n{\"Shutdown\":{}}\n");
    let reference = serve_stdout(&args, &full_input);

    // First life: head of the conversation, snapshot, die without Shutdown.
    let mut first_input = head.join("\n");
    first_input.push_str(&format!(
        "\n{{\"Snapshot\":{{\"path\":\"{snap_path}\"}}}}\n"
    ));
    serve_stdout(&args, &first_input);

    // Second life: restore and finish the conversation.
    let mut second_input = tail.join("\n");
    second_input.push_str("\n{\"Shutdown\":{}}\n");
    let resumed = serve_stdout(
        &["--restore", snap_path, "--workers", "20", "--threads", "1"],
        &second_input,
    );

    let reference_tail: Vec<&str> = reference.lines().skip(head.len()).collect();
    let resumed_lines: Vec<&str> = resumed.lines().collect();
    assert_eq!(
        resumed_lines, reference_tail,
        "restored binary diverged from the uninterrupted conversation"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Protocol errors carry stable codes and leave the daemon able to continue.
#[test]
fn errors_are_typed_and_non_fatal() {
    let mut session = Session::new(&config());
    let cases = [
        (
            r#"{"Predict":{"tenant":"nope","categories":[0]}}"#,
            "unknown-tenant",
        ),
        (
            r#"{"Open":{"tenant":"wf2","algorithm":"not-an-algorithm"}}"#,
            "unknown-algorithm",
        ),
        (r#"{"Open":{"tenant":"wf"}}"#, "duplicate-tenant"),
        (
            r#"{"Workload":{"tenant":"wf","workflow":"not-a-workflow"}}"#,
            "unknown-workflow",
        ),
        (
            r#"{"Complete":{"tenant":"wf","task":0,"cores":1.0,"memory_mb":1.0,"disk_mb":1.0,"duration_s":1.0}}"#,
            "task-not-running",
        ),
        (
            r#"{"Fault":{"tenant":"wf","task":0,"kind":"meteor"}}"#,
            "bad-fault-kind",
        ),
        (r#"garbage"#, "bad-request"),
    ];
    session.handle_line(r#"{"Open":{"tenant":"wf"}}"#);
    for (line, expected) in cases {
        let (response, shutdown) = session.handle_line(line);
        assert!(!shutdown);
        match response {
            Response::Error { code, .. } => assert_eq!(code, expected, "{line}"),
            other => panic!("{line}: expected an error, got {other:?}"),
        }
    }
    // Still alive and consistent after the error barrage.
    let (response, _) = session.handle_line(r#"{"Submit":{"tenant":"wf","task":0,"category":0}}"#);
    assert!(
        matches!(response, Response::Submitted { accepted: 1, .. }),
        "daemon wedged after errors: {response:?}"
    );
}

/// The daemon forwards [`WorkloadError`] codes verbatim onto the wire
/// (`Response::error(e.code(), ...)` in the `Workload` handler), so the
/// whole code table is protocol surface: pin every variant's code here,
/// including the `shape-conflict` code added with the DAG shapes.
#[test]
fn workload_error_codes_are_wire_stable() {
    use tora::workloads::{PaperWorkflow, WorkloadError};

    let shape = tora::prelude::DagShape::diamond(2, 2);
    let cases: Vec<(WorkloadError, &str)> = vec![
        (
            PaperWorkflow::Bimodal
                .spec(1)
                .dag_shape(shape)
                .tasks(10)
                .materialize()
                .unwrap_err(),
            "shape-conflict",
        ),
        (
            PaperWorkflow::Bimodal
                .spec(1)
                .dag()
                .materialize()
                .unwrap_err(),
            "dag-unsupported",
        ),
        (
            match PaperWorkflow::TopEft.spec(1).dag().stream() {
                Err(e) => e,
                Ok(_) => panic!("the Coffea DAG trace must not stream"),
            },
            "dag-cannot-stream",
        ),
        (
            PaperWorkflow::ColmenaXtb
                .spec(1)
                .category_tasks(vec![10])
                .materialize()
                .unwrap_err(),
            "category-arity",
        ),
        (WorkloadError::invalid("task 3 has id 7"), "invalid-trace"),
    ];
    for (err, code) in cases {
        assert_eq!(err.code(), code, "{err}");
    }
}
