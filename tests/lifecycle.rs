//! The task lifecycle contract, exercised through the public API.
//!
//! Two layers of assurance:
//!
//! 1. the legal-transition table is spelled out pair by pair and compared
//!    against [`TaskPhase::can_advance`] exhaustively, so an accidental edit
//!    to the machine shows up as a diff against intent;
//! 2. proptests drive the *engine* through hostile fault plans (crashes,
//!    racks, stragglers, flaky dispatch, replay, checkpointing). The engine
//!    `expect`s every lifecycle transition it requests, so an illegal
//!    transition anywhere in a run is a panic — each completed run is a
//!    proof that the engine never steps outside the table.

use proptest::prelude::*;
use tora::prelude::*;

/// The intended machine, pair by pair (deliberately redundant with
/// `TaskPhase::successors`).
const LEGAL: [(TaskPhase, TaskPhase); 11] = [
    (TaskPhase::Pending, TaskPhase::Ready),
    (TaskPhase::Pending, TaskPhase::DeadLettered),
    (TaskPhase::Ready, TaskPhase::Running),
    (TaskPhase::Ready, TaskPhase::Requeued),
    (TaskPhase::Ready, TaskPhase::DeadLettered),
    (TaskPhase::Requeued, TaskPhase::Ready),
    (TaskPhase::Requeued, TaskPhase::DeadLettered),
    (TaskPhase::Running, TaskPhase::Ready),
    (TaskPhase::Running, TaskPhase::Completed),
    (TaskPhase::Running, TaskPhase::DeadLettered),
    (TaskPhase::DeadLettered, TaskPhase::Ready),
];

#[test]
fn transition_table_is_exactly_the_declared_pairs() {
    for from in TaskPhase::ALL {
        for to in TaskPhase::ALL {
            assert_eq!(
                from.can_advance(to),
                LEGAL.contains(&(from, to)),
                "{from:?} -> {to:?}"
            );
        }
    }
}

#[test]
fn terminal_phases_are_completed_and_dead_lettered_only() {
    for phase in TaskPhase::ALL {
        assert_eq!(
            phase.is_terminal(),
            matches!(phase, TaskPhase::Completed | TaskPhase::DeadLettered),
            "{phase:?}"
        );
    }
    // Completed is absorbing; the dead-letter channel re-admits only to the
    // ready queue (replay).
    assert!(TaskPhase::Completed.successors().is_empty());
    assert_eq!(TaskPhase::DeadLettered.successors(), &[TaskPhase::Ready]);
}

#[test]
fn illegal_transition_reports_both_endpoints() {
    let err = IllegalTransition {
        from: TaskPhase::Completed,
        to: TaskPhase::Running,
    };
    let msg = err.to_string();
    assert!(
        msg.contains("Completed") && msg.contains("Running"),
        "{msg}"
    );
}

/// Hostile but always-terminating fault plans, checkpointing included.
fn arb_fault_plan() -> impl Strategy<Value = FaultPlan> {
    (
        prop::option::of(10.0f64..80.0),
        0.0f64..0.4,
        0.0f64..0.4,
        1usize..6,
        prop::option::of((25.0f64..150.0, 2u32..5)),
        prop::option::of((0.2f64..=1.0, 1usize..3)),
        0.0f64..=1.0,
    )
        .prop_map(
            |(crash, straggler, dispatch, max_attempts, rack, replay, checkpoint)| FaultPlan {
                crash_mean_interval_s: crash,
                straggler_rate: straggler,
                straggler_multiplier: 5.0,
                straggler_timeout_s: 150.0,
                dispatch_failure_rate: dispatch,
                dispatch_backoff_s: 1.0,
                max_dispatch_retries: 3,
                max_attempts,
                max_unplaceable_rounds: 3,
                rack_crash_mean_interval_s: rack.map(|(interval, _)| interval),
                rack_count: rack.map_or(0, |(_, count)| count),
                replay_capacity_fraction: replay.map_or(0.0, |(fraction, _)| fraction),
                max_replay_rounds: replay.map_or(0, |(_, rounds)| rounds),
                checkpointed_fraction: checkpoint,
                ..FaultPlan::none()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any legal walk that reaches `Completed` can never leave it, and the
    /// only path back from `DeadLettered` is the replay edge.
    #[test]
    fn random_legal_walks_respect_the_absorbing_states(
        steps in prop::collection::vec(0usize..TaskPhase::ALL.len(), 1..40),
    ) {
        let mut phase = TaskPhase::Pending;
        for step in steps {
            let to = TaskPhase::ALL[step];
            if phase.can_advance(to) {
                prop_assert!(LEGAL.contains(&(phase, to)));
                phase = to;
            } else {
                prop_assert!(!LEGAL.contains(&(phase, to)));
            }
            if phase == TaskPhase::Completed {
                // Absorbing: every further request must be rejected.
                for to in TaskPhase::ALL {
                    prop_assert!(!phase.can_advance(to));
                }
                break;
            }
        }
    }

    /// The engine requests every transition through the checked machine and
    /// `expect`s the result, so a run that finishes *is* the property: no
    /// reachable engine state asks for an illegal transition. Conservation
    /// then pins down that every task ended in exactly one terminal phase.
    #[test]
    fn engine_never_requests_an_illegal_transition(
        plan in arb_fault_plan(),
        n in 20usize..50,
        seed in 0u64..1000,
        poisson in any::<bool>(),
    ) {
        plan.validate().expect("plan valid by construction");
        let wf = SyntheticKind::Bimodal.catalog_workflow().spec(seed).tasks(n).materialize().unwrap();
        let config = SimConfig {
            churn: ChurnConfig {
                initial: 4,
                min: 2,
                max: 8,
                mean_interval_s: Some(10.0),
            },
            arrival: if poisson {
                ArrivalModel::Poisson { mean_interval_s: 0.8 }
            } else {
                ArrivalModel::Batch
            },
            faults: plan,
            record_log: true,
            ..SimConfig::paper_like(seed)
        };
        let res = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);

        // One terminal phase per task, nothing lost or duplicated.
        let dead = res.metrics.dead_lettered_count() as u64;
        prop_assert_eq!(res.stats.submitted, n as u64);
        prop_assert_eq!(res.stats.completions + dead, n as u64);

        // The event log's lifecycle invariants agree (dispatch-while-dead,
        // replay-while-alive, double completion all fail consistency).
        let log = res.log.expect("log enabled");
        prop_assert!(log.check_consistency().is_ok(), "{:?}", log.check_consistency());
    }
}
