//! Differential suite: the event engine against the analytic replay.
//!
//! `replay` processes tasks strictly serially — predict, enforce, retry
//! until success, observe. The engine reproduces exactly that schedule when
//! an application driver feeds it one task at a time over a fixed
//! single-worker pool: every allocator call then happens in the same order
//! with the same inputs, so the resulting [`WorkflowMetrics`] must be
//! byte-identical, for every algorithm. This pins the two execution paths
//! together far more tightly than the aggregate-identity checks in
//! `accounting.rs` — any divergence in retry logic, charging, or RNG
//! consumption shows up as a JSON diff.

use tora::prelude::*;

/// Every allocator the workspace ships, paper set and extensions alike.
const ALL_ALGORITHMS: [AlgorithmKind; 11] = [
    AlgorithmKind::WholeMachine,
    AlgorithmKind::MaxSeen,
    AlgorithmKind::MinWaste,
    AlgorithmKind::MaxThroughput,
    AlgorithmKind::QuantizedBucketing,
    AlgorithmKind::GreedyBucketing,
    AlgorithmKind::ExhaustiveBucketing,
    AlgorithmKind::GreedyBucketingIncremental,
    AlgorithmKind::KMeansBucketing,
    AlgorithmKind::FeatureBinned,
    AlgorithmKind::SemiBandit,
];

const SEEDS: [u64; 3] = [1, 7, 23];

/// Feeds the engine one task per completion: task 0 at start, task k+1 when
/// task k completes. With a single worker this makes the engine's allocator
/// call sequence identical to the serial replay's.
struct SerialDriver {
    tasks: Vec<TaskSpec>,
    next: usize,
}

impl Driver for SerialDriver {
    fn on_start(&mut self, api: &mut SubmitApi) {
        if let Some(t) = self.tasks.first() {
            api.submit_featured(t.category.0, t.features, t.peak, t.duration_s, Vec::new());
        }
        self.next = 1;
    }

    fn on_task_complete(&mut self, _task: &TaskSpec, api: &mut SubmitApi) {
        if let Some(t) = self.tasks.get(self.next) {
            api.submit_featured(t.category.0, t.features, t.peak, t.duration_s, Vec::new());
        }
        self.next += 1;
    }
}

/// Run `wf` through the engine serially and return the metrics as JSON.
fn engine_serial_json(
    wf: &Workflow,
    algorithm: AlgorithmKind,
    seed: u64,
    fault_policy: Option<FaultPolicy>,
) -> String {
    let driver = Box::new(SerialDriver {
        tasks: wf.tasks.clone(),
        next: 0,
    });
    let config = SimConfig {
        churn: ChurnConfig::fixed(1),
        faults: FaultPlan::none(),
        fault_policy,
        seed,
        ..SimConfig::default()
    };
    let result = Simulation::with_driver(driver, wf.worker, algorithm, config).run();
    assert_eq!(result.metrics.len(), wf.len(), "{algorithm} seed {seed}");
    serde_json::to_string(&result.metrics).expect("metrics serialize")
}

#[test]
fn engine_matches_replay_for_every_algorithm_and_seed() {
    let wf = SyntheticKind::Bimodal
        .catalog_workflow()
        .spec(3)
        .tasks(120)
        .materialize()
        .unwrap();
    for algorithm in ALL_ALGORITHMS {
        for seed in SEEDS {
            let replayed = tora::sim::replay(&wf, algorithm, EnforcementModel::default(), seed);
            let want = serde_json::to_string(&replayed).expect("metrics serialize");
            let got = engine_serial_json(&wf, algorithm, seed, None);
            assert_eq!(got, want, "{algorithm} seed {seed}: engine vs replay");
        }
    }
}

#[test]
fn fault_policy_with_zero_observed_faults_changes_nothing() {
    // The feedback channel compiled in (policy set) but never fed — the
    // fault plan is all-zero, so `observe_outcome` is never called and the
    // padding/escalation factors stay exactly 1.0. Metrics must remain
    // byte-identical to both the bare engine and the replay.
    let wf = SyntheticKind::Exponential
        .catalog_workflow()
        .spec(9)
        .tasks(120)
        .materialize()
        .unwrap();
    for algorithm in ALL_ALGORITHMS {
        for seed in SEEDS {
            let bare = engine_serial_json(&wf, algorithm, seed, None);
            let with_policy =
                engine_serial_json(&wf, algorithm, seed, Some(FaultPolicy::default()));
            assert_eq!(bare, with_policy, "{algorithm} seed {seed}: policy no-op");
            let replayed = tora::sim::replay(&wf, algorithm, EnforcementModel::default(), seed);
            let want = serde_json::to_string(&replayed).expect("metrics serialize");
            assert_eq!(
                with_policy, want,
                "{algorithm} seed {seed}: policy vs replay"
            );
        }
    }
}

/// Run a multi-category workflow through the engine at an explicit thread
/// count with a tracing sink attached, and return every comparable output:
/// the engine stats, the §II-C metrics, the allocator trace stream, and the
/// fault report.
fn traced_run_json(
    wf: &Workflow,
    algorithm: AlgorithmKind,
    seed: u64,
    threads: usize,
) -> (String, String, Vec<AllocEvent>, String) {
    let config = SimConfig {
        churn: ChurnConfig::fixed(4),
        queue_policy: QueuePolicy::FifoBackfill,
        faults: FaultPlan::named("heavy").expect("preset exists"),
        fault_policy: Some(FaultPolicy::default()),
        seed,
        threads,
        ..SimConfig::default()
    };
    let (result, sink) = Simulation::new(wf, algorithm, config)
        .with_sink(MemorySink::new())
        .run_traced();
    let stats = serde_json::to_string(&result.stats).expect("stats serialize");
    let metrics = serde_json::to_string(&result.metrics).expect("metrics serialize");
    let report = FaultReport::from_result(&result, &config, algorithm.label());
    let report = serde_json::to_string(&report).expect("report serialize");
    (stats, metrics, sink.events, report)
}

#[test]
fn parallel_dispatch_is_byte_identical_to_serial() {
    // The tentpole guarantee: category-sharded batched prediction and the
    // per-category RNG streams make thread count a pure wall-clock knob.
    // A multi-category workflow under backfill scheduling (so dispatch sees
    // batches, not single tasks), heavy faults, and fault feedback must
    // produce identical engine stats, metrics, trace streams, and fault
    // reports at threads = 1 and threads = 4 — for every algorithm.
    let wf = PaperWorkflow::ColmenaXtb
        .spec(5)
        .category_tasks(vec![60, 60])
        .materialize()
        .unwrap();
    for algorithm in ALL_ALGORITHMS {
        for seed in SEEDS {
            let (stats_1, metrics_1, trace_1, report_1) = traced_run_json(&wf, algorithm, seed, 1);
            let (stats_4, metrics_4, trace_4, report_4) = traced_run_json(&wf, algorithm, seed, 4);
            assert!(!trace_1.is_empty(), "{algorithm} seed {seed}: trace empty");
            assert_eq!(stats_1, stats_4, "{algorithm} seed {seed}: stats");
            assert_eq!(metrics_1, metrics_4, "{algorithm} seed {seed}: metrics");
            assert_eq!(trace_1, trace_4, "{algorithm} seed {seed}: trace");
            assert_eq!(report_1, report_4, "{algorithm} seed {seed}: report");
        }
    }
}

#[test]
fn parallel_dispatch_is_byte_identical_on_dag_shapes() {
    // Same thread-count guarantee under *structural* pressure: dependency
    // gating holds tasks back, so backfill batches form differently and the
    // dead-letter cascade (heavy faults) rides the dependency edges. The
    // multi-category colmena mix keeps the sharded allocator honest, and
    // the critical-path stats ride inside the stats/report JSON, so their
    // thread-independence is pinned here too.
    let shaped = [
        PaperWorkflow::ColmenaXtb
            .spec(5)
            .dag_shape(DagShape::diamond(3, 6).with_loopback(2))
            .materialize()
            .unwrap(),
        PaperWorkflow::ColmenaXtb
            .spec(5)
            .dag_shape(DagShape::random_layered(4, 5).with_loopback(1))
            .materialize()
            .unwrap(),
    ];
    for wf in &shaped {
        assert!(wf.has_dependencies());
        for algorithm in ALL_ALGORITHMS {
            let seed = 7;
            let (stats_1, metrics_1, trace_1, report_1) = traced_run_json(wf, algorithm, seed, 1);
            let (stats_4, metrics_4, trace_4, report_4) = traced_run_json(wf, algorithm, seed, 4);
            assert!(
                stats_1.contains("critical_path"),
                "{algorithm} on {}: critical-path stats missing",
                wf.name
            );
            assert_eq!(stats_1, stats_4, "{algorithm} on {}: stats", wf.name);
            assert_eq!(metrics_1, metrics_4, "{algorithm} on {}: metrics", wf.name);
            assert_eq!(trace_1, trace_4, "{algorithm} on {}: trace", wf.name);
            assert_eq!(report_1, report_4, "{algorithm} on {}: report", wf.name);
        }
    }
}

#[test]
fn differential_parity_extends_to_production_shaped_traces() {
    // The synthetic distributions exercise the bucketing math; the
    // production-shaped traces exercise multi-category learning. Same
    // parity requirement, smaller algorithm set to keep the suite quick.
    let wf = PaperWorkflow::ColmenaXtb.build(11);
    for algorithm in [
        AlgorithmKind::GreedyBucketing,
        AlgorithmKind::ExhaustiveBucketing,
        AlgorithmKind::MaxSeen,
    ] {
        let replayed = tora::sim::replay(&wf, algorithm, EnforcementModel::default(), 11);
        let want = serde_json::to_string(&replayed).expect("metrics serialize");
        let got = engine_serial_json(&wf, algorithm, 11, Some(FaultPolicy::default()));
        assert_eq!(got, want, "{algorithm}: production trace parity");
    }
}
