//! Differential suite: the event engine against the analytic replay.
//!
//! `replay` processes tasks strictly serially — predict, enforce, retry
//! until success, observe. The engine reproduces exactly that schedule when
//! an application driver feeds it one task at a time over a fixed
//! single-worker pool: every allocator call then happens in the same order
//! with the same inputs, so the resulting [`WorkflowMetrics`] must be
//! byte-identical, for every algorithm. This pins the two execution paths
//! together far more tightly than the aggregate-identity checks in
//! `accounting.rs` — any divergence in retry logic, charging, or RNG
//! consumption shows up as a JSON diff.

use tora::prelude::*;

/// Every allocator the workspace ships, paper set and extensions alike.
const ALL_ALGORITHMS: [AlgorithmKind; 9] = [
    AlgorithmKind::WholeMachine,
    AlgorithmKind::MaxSeen,
    AlgorithmKind::MinWaste,
    AlgorithmKind::MaxThroughput,
    AlgorithmKind::QuantizedBucketing,
    AlgorithmKind::GreedyBucketing,
    AlgorithmKind::ExhaustiveBucketing,
    AlgorithmKind::GreedyBucketingIncremental,
    AlgorithmKind::KMeansBucketing,
];

const SEEDS: [u64; 3] = [1, 7, 23];

/// Feeds the engine one task per completion: task 0 at start, task k+1 when
/// task k completes. With a single worker this makes the engine's allocator
/// call sequence identical to the serial replay's.
struct SerialDriver {
    tasks: Vec<TaskSpec>,
    next: usize,
}

impl Driver for SerialDriver {
    fn on_start(&mut self, api: &mut SubmitApi) {
        if let Some(t) = self.tasks.first() {
            api.submit(t.category.0, t.peak, t.duration_s);
        }
        self.next = 1;
    }

    fn on_task_complete(&mut self, _task: &TaskSpec, api: &mut SubmitApi) {
        if let Some(t) = self.tasks.get(self.next) {
            api.submit(t.category.0, t.peak, t.duration_s);
        }
        self.next += 1;
    }
}

/// Run `wf` through the engine serially and return the metrics as JSON.
fn engine_serial_json(
    wf: &Workflow,
    algorithm: AlgorithmKind,
    seed: u64,
    fault_policy: Option<FaultPolicy>,
) -> String {
    let driver = Box::new(SerialDriver {
        tasks: wf.tasks.clone(),
        next: 0,
    });
    let config = SimConfig {
        churn: ChurnConfig::fixed(1),
        faults: FaultPlan::none(),
        fault_policy,
        seed,
        ..SimConfig::default()
    };
    let result = Simulation::with_driver(driver, wf.worker, algorithm, config).run();
    assert_eq!(result.metrics.len(), wf.len(), "{algorithm} seed {seed}");
    serde_json::to_string(&result.metrics).expect("metrics serialize")
}

#[test]
fn engine_matches_replay_for_every_algorithm_and_seed() {
    let wf = SyntheticKind::Bimodal
        .catalog_workflow()
        .spec(3)
        .tasks(120)
        .materialize()
        .unwrap();
    for algorithm in ALL_ALGORITHMS {
        for seed in SEEDS {
            let replayed = tora::sim::replay(&wf, algorithm, EnforcementModel::default(), seed);
            let want = serde_json::to_string(&replayed).expect("metrics serialize");
            let got = engine_serial_json(&wf, algorithm, seed, None);
            assert_eq!(got, want, "{algorithm} seed {seed}: engine vs replay");
        }
    }
}

#[test]
fn fault_policy_with_zero_observed_faults_changes_nothing() {
    // The feedback channel compiled in (policy set) but never fed — the
    // fault plan is all-zero, so `observe_outcome` is never called and the
    // padding/escalation factors stay exactly 1.0. Metrics must remain
    // byte-identical to both the bare engine and the replay.
    let wf = SyntheticKind::Exponential
        .catalog_workflow()
        .spec(9)
        .tasks(120)
        .materialize()
        .unwrap();
    for algorithm in ALL_ALGORITHMS {
        for seed in SEEDS {
            let bare = engine_serial_json(&wf, algorithm, seed, None);
            let with_policy =
                engine_serial_json(&wf, algorithm, seed, Some(FaultPolicy::default()));
            assert_eq!(bare, with_policy, "{algorithm} seed {seed}: policy no-op");
            let replayed = tora::sim::replay(&wf, algorithm, EnforcementModel::default(), seed);
            let want = serde_json::to_string(&replayed).expect("metrics serialize");
            assert_eq!(
                with_policy, want,
                "{algorithm} seed {seed}: policy vs replay"
            );
        }
    }
}

#[test]
fn differential_parity_extends_to_production_shaped_traces() {
    // The synthetic distributions exercise the bucketing math; the
    // production-shaped traces exercise multi-category learning. Same
    // parity requirement, smaller algorithm set to keep the suite quick.
    let wf = PaperWorkflow::ColmenaXtb.build(11);
    for algorithm in [
        AlgorithmKind::GreedyBucketing,
        AlgorithmKind::ExhaustiveBucketing,
        AlgorithmKind::MaxSeen,
    ] {
        let replayed = tora::sim::replay(&wf, algorithm, EnforcementModel::default(), 11);
        let want = serde_json::to_string(&replayed).expect("metrics serialize");
        let got = engine_serial_json(&wf, algorithm, 11, Some(FaultPolicy::default()));
        assert_eq!(got, want, "{algorithm}: production trace parity");
    }
}
