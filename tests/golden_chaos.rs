//! Golden-output tests for `tora chaos`: at a fixed seed the rendered
//! `FaultReport` must be byte-identical from run to run. Fault injection
//! draws from a dedicated seeded stream, so any nondeterminism (hash-order
//! iteration, time-dependent formatting, an RNG draw leaking between
//! streams) shows up here as a diff before it can poison an experiment.

use std::process::Command;

fn tora_stdout(args: &[&str]) -> String {
    let output = Command::new(env!("CARGO_BIN_EXE_tora"))
        .args(args)
        .output()
        .expect("binary runs");
    assert!(
        output.status.success(),
        "tora {args:?} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

/// Run the same chaos invocation twice and return the (identical) report.
fn golden_report(plan: &str) -> String {
    let args = [
        "chaos", "bimodal", "--tasks", "120", "--seed", "7", "--plan", plan,
    ];
    let first = tora_stdout(&args);
    let second = tora_stdout(&args);
    assert_eq!(
        first, second,
        "chaos --plan {plan}: report differs between identical runs"
    );
    first
}

#[test]
fn heavy_preset_report_is_byte_stable() {
    let report = golden_report("heavy");
    assert!(report.contains("fault report"), "{report}");
    // The report must carry the full terminal-state ledger.
    for row in ["submitted", "completed", "dead-lettered", "conservation"] {
        assert!(report.contains(row), "missing row {row:?}: {report}");
    }
}

#[test]
fn rack_outages_preset_report_is_byte_stable() {
    let report = golden_report("rack-outages");
    // Correlated crashes must surface both granularities: the rack-level
    // event count and the per-worker casualties.
    assert!(report.contains("rack crashes"), "{report}");
    assert!(report.contains("worker crashes"), "{report}");
    // Replay is armed in this preset, so the replay ledger rows render.
    assert!(report.contains("replayed"), "{report}");
    assert!(report.contains("replay successes"), "{report}");
}

#[test]
fn dag_shape_report_is_byte_stable_and_carries_critical_path_rows() {
    // A structured run surfaces critical-path accounting in the report:
    // the submit-time longest path, the realized path with its inflation
    // factor, and the waste split into on-path vs off-path MB*s. Those
    // rows must render and the whole report must stay byte-stable.
    let args = [
        "chaos", "bimodal", "--shape", "diamond", "--width", "3", "--depth", "4", "--seed", "7",
        "--plan", "light",
    ];
    let first = tora_stdout(&args);
    let second = tora_stdout(&args);
    assert_eq!(first, second, "DAG chaos report differs between runs");
    for row in [
        "critical path (submit)",
        "critical path (realized)",
        "waste on / off path",
        "conservation",
    ] {
        assert!(first.contains(row), "missing row {row:?}: {first}");
    }
}

#[test]
fn feedback_flag_keeps_the_report_deterministic() {
    // The fault-feedback policy adjusts allocations from observed outcomes
    // but consumes no randomness of its own: with --feedback the report
    // must still be byte-stable at a fixed seed.
    let args = [
        "chaos",
        "bimodal",
        "--tasks",
        "120",
        "--seed",
        "7",
        "--plan",
        "rack-outages",
        "--feedback",
    ];
    let first = tora_stdout(&args);
    let second = tora_stdout(&args);
    assert_eq!(first, second, "--feedback broke report determinism");
    assert!(first.contains("fault report"), "{first}");
}
