//! The §VII "additional resource types" extension, exercised end-to-end:
//! managing the wall-time axis (`t_a` of the paper's allocation 4-tuple)
//! with the same bucketing machinery as the spatial dimensions.

use tora::alloc::allocator::AllocatorConfig;
use tora::prelude::*;
use tora::sim::replay_with_config;

fn time_managed_config(workflow: &Workflow) -> AllocatorConfig {
    // The paper's probe plus a 1-hour default wall-time limit (what batch
    // systems typically grant unqualified jobs).
    let probe = ResourceVector::new(1.0, 1024.0, 1024.0).with(ResourceKind::TimeS, 3600.0);
    AllocatorConfig {
        machine: workflow.worker,
        managed: vec![
            ResourceKind::Cores,
            ResourceKind::MemoryMb,
            ResourceKind::DiskMb,
            ResourceKind::TimeS,
        ],
        exploratory: Some(ExploratoryPolicy::Conservative { probe }),
        ..AllocatorConfig::default()
    }
}

#[test]
fn time_axis_is_learned_and_enforced() {
    let wf = SyntheticKind::Normal
        .catalog_workflow()
        .spec(11)
        .tasks(400)
        .materialize()
        .unwrap();
    let config = time_managed_config(&wf);
    let metrics = replay_with_config(
        &wf,
        AlgorithmKind::ExhaustiveBucketing,
        config,
        EnforcementModel::LinearRamp,
        11,
    );
    assert_eq!(metrics.len(), wf.len());
    // The time dimension now has meaningful efficiency: allocated wall time
    // tracks actual durations instead of the 10^7-second machine cap.
    let awe = metrics.awe(ResourceKind::TimeS).unwrap();
    assert!(
        awe > 0.05,
        "time-limit efficiency should be substantial, got {awe}"
    );
    // And some tasks were killed for outliving their time allocation
    // (probabilistic bucket sampling under-allocates occasionally).
    assert!(metrics.total_retries() > 0);
    // All spatial accounting is still consistent.
    for kind in [
        ResourceKind::Cores,
        ResourceKind::MemoryMb,
        ResourceKind::DiskMb,
    ] {
        let a = metrics.total_allocation(kind);
        let c = metrics.total_consumption(kind);
        let w = metrics.waste(kind);
        assert!((a - (c + w.total())).abs() <= 1e-6 * a.max(1.0), "{kind}");
    }
}

#[test]
fn unmanaged_time_axis_never_fails_tasks() {
    // The default configuration leaves time unmanaged: the allocation gets
    // the machine's (huge) time capacity, so no task is ever killed for
    // time.
    let wf = SyntheticKind::Normal
        .catalog_workflow()
        .spec(12)
        .tasks(200)
        .materialize()
        .unwrap();
    let metrics = replay(
        &wf,
        AlgorithmKind::WholeMachine,
        EnforcementModel::LinearRamp,
        12,
    );
    assert_eq!(metrics.total_retries(), 0);
    let awe = metrics.awe(ResourceKind::TimeS).unwrap();
    assert!(
        awe < 0.01,
        "unmanaged time AWE is tiny by design, got {awe}"
    );
}

#[test]
fn time_managed_beats_unmanaged_on_time_efficiency() {
    let wf = SyntheticKind::Uniform
        .catalog_workflow()
        .spec(13)
        .tasks(400)
        .materialize()
        .unwrap();
    let managed = replay_with_config(
        &wf,
        AlgorithmKind::ExhaustiveBucketing,
        time_managed_config(&wf),
        EnforcementModel::LinearRamp,
        13,
    );
    let unmanaged = replay(
        &wf,
        AlgorithmKind::ExhaustiveBucketing,
        EnforcementModel::LinearRamp,
        13,
    );
    let m = managed.awe(ResourceKind::TimeS).unwrap();
    let u = unmanaged.awe(ResourceKind::TimeS).unwrap();
    assert!(m > 10.0 * u, "managed {m} should dwarf unmanaged {u}");
    // The spatial dimensions stay in the same ballpark (time retries cost
    // some memory waste, but not catastrophically).
    let mem_managed = managed.awe(ResourceKind::MemoryMb).unwrap();
    let mem_unmanaged = unmanaged.awe(ResourceKind::MemoryMb).unwrap();
    assert!(
        mem_managed > mem_unmanaged * 0.5,
        "managed {mem_managed} vs unmanaged {mem_unmanaged}"
    );
}

#[test]
fn engine_supports_time_management_too() {
    // Through the full engine: time allocations are enforcement limits, not
    // reservations, so they must not serialize the pool.
    let wf = SyntheticKind::Bimodal
        .catalog_workflow()
        .spec(14)
        .tasks(200)
        .materialize()
        .unwrap();
    // (The engine uses the default allocator config; this test verifies the
    // unmanaged path keeps time out of packing: with 10 workers and
    // machine-cap time allocations, tasks still run concurrently.)
    let config = SimConfig {
        churn: ChurnConfig::fixed(10),
        track_utilization: true,
        ..SimConfig::default()
    };
    let res = simulate(&wf, AlgorithmKind::MaxSeen, config);
    assert_eq!(res.metrics.len(), wf.len());
    let series = res.utilization.unwrap();
    assert!(
        series.peak_running() > 10,
        "time axis must not serialize placement (peak {})",
        series.peak_running()
    );
}
