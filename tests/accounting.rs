//! Cross-crate accounting invariants: the §II-C identities must hold for
//! every algorithm on every execution path (serial replay and the engine).

use tora::prelude::*;

const KINDS: [ResourceKind; 3] = [
    ResourceKind::Cores,
    ResourceKind::MemoryMb,
    ResourceKind::DiskMb,
];

fn check_identities(metrics: &WorkflowMetrics, label: &str) {
    for kind in KINDS {
        let consumption = metrics.total_consumption(kind);
        let allocation = metrics.total_allocation(kind);
        let waste = metrics.waste(kind);
        // A = C + IF + FA.
        assert!(
            (allocation - (consumption + waste.total())).abs() <= 1e-6 * allocation.max(1.0),
            "{label}/{kind}: A {allocation} != C {consumption} + waste {}",
            waste.total()
        );
        // AWE = C / A ∈ (0, 1].
        let awe = metrics.awe(kind).unwrap();
        assert!(awe > 0.0 && awe <= 1.0, "{label}/{kind}: AWE {awe}");
        assert!((awe - consumption / allocation).abs() < 1e-12);
        // Waste components are non-negative.
        assert!(waste.internal_fragmentation >= -1e-9, "{label}/{kind}");
        assert!(waste.failed_allocation >= -1e-9, "{label}/{kind}");
    }
}

#[test]
fn replay_identities_hold_for_every_algorithm() {
    let wf = SyntheticKind::Bimodal
        .catalog_workflow()
        .spec(31)
        .tasks(250)
        .materialize()
        .unwrap();
    for alg in AlgorithmKind::PAPER_SET {
        let m = replay(&wf, alg, EnforcementModel::LinearRamp, 31);
        assert_eq!(m.len(), wf.len());
        check_identities(&m, alg.label());
    }
}

#[test]
fn engine_identities_hold_with_churn_and_preemption() {
    let wf = SyntheticKind::Uniform
        .catalog_workflow()
        .spec(17)
        .tasks(250)
        .materialize()
        .unwrap();
    let config = SimConfig {
        churn: ChurnConfig {
            initial: 3,
            min: 2,
            max: 10,
            mean_interval_s: Some(10.0),
        },
        arrival: ArrivalModel::Poisson {
            mean_interval_s: 1.0,
        },
        ..SimConfig::paper_like(17)
    };
    for alg in [
        AlgorithmKind::ExhaustiveBucketing,
        AlgorithmKind::MaxSeen,
        AlgorithmKind::QuantizedBucketing,
    ] {
        let res = simulate(&wf, alg, config);
        assert_eq!(res.metrics.len(), wf.len(), "{alg}");
        check_identities(&res.metrics, alg.label());
        // Every task id appears exactly once.
        let mut ids: Vec<u64> = res.metrics.outcomes().iter().map(|o| o.task.0).collect();
        ids.sort_unstable();
        assert!(
            ids.windows(2).all(|w| w[0] + 1 == w[1]),
            "{alg}: duplicate or missing tasks"
        );
        // Every outcome passes the structural check.
        for o in res.metrics.outcomes() {
            o.check().unwrap();
        }
    }
}

#[test]
fn preemption_accounting_is_separate_from_waste() {
    // A preempted attempt must not enter the §II-C waste metric; it lands
    // in `preempted_alloc_time` instead.
    let wf = SyntheticKind::Normal
        .catalog_workflow()
        .spec(23)
        .tasks(300)
        .materialize()
        .unwrap();
    let churny = SimConfig {
        churn: ChurnConfig {
            initial: 6,
            min: 2,
            max: 8,
            mean_interval_s: Some(8.0),
        },
        arrival: ArrivalModel::Batch,
        ..SimConfig::paper_like(23)
    };
    let res = simulate(&wf, AlgorithmKind::MaxSeen, churny);
    assert!(
        res.preemptions > 0,
        "expected preemptions under heavy churn"
    );
    // Outcomes remain structurally sound despite preemptions.
    for o in res.metrics.outcomes() {
        o.check().unwrap();
    }
    // Preempted allocation-time is tracked and non-negative.
    assert!(res
        .preempted_alloc_time
        .iter()
        .all(|(_, v)| v.is_finite() && v >= 0.0));
}

#[test]
fn instant_peak_never_reports_higher_awe_than_linear_ramp() {
    // Identical verdicts, fuller charging of failures → AWE(instant) ≤
    // AWE(ramp) for every algorithm on every dimension.
    let wf = SyntheticKind::Exponential
        .catalog_workflow()
        .spec(5)
        .tasks(250)
        .materialize()
        .unwrap();
    for alg in [
        AlgorithmKind::ExhaustiveBucketing,
        AlgorithmKind::MinWaste,
        AlgorithmKind::QuantizedBucketing,
    ] {
        let ramp = replay(&wf, alg, EnforcementModel::LinearRamp, 5);
        let instant = replay(&wf, alg, EnforcementModel::InstantPeak, 5);
        for kind in KINDS {
            let r = ramp.awe(kind).unwrap();
            let i = instant.awe(kind).unwrap();
            assert!(i <= r + 1e-9, "{alg}/{kind}: instant {i} > ramp {r}");
        }
    }
}

#[test]
fn awe_is_independent_of_fixed_pool_size_for_deterministic_allocators() {
    // §II-C: AWE is worker-count independent. For deterministic allocators
    // whose predictions depend only on the record set, the serial replay and
    // any fixed pool agree exactly on the allocation totals when tasks are
    // batch-submitted and completions happen in the same order — weaker
    // version: whole machine is invariant under any pool size.
    let wf = SyntheticKind::Bimodal
        .catalog_workflow()
        .spec(2)
        .tasks(200)
        .materialize()
        .unwrap();
    let awe_for = |n: usize| {
        let config = SimConfig {
            churn: ChurnConfig::fixed(n),
            ..SimConfig::default()
        };
        simulate(&wf, AlgorithmKind::WholeMachine, config)
            .metrics
            .awe(ResourceKind::MemoryMb)
            .unwrap()
    };
    let a = awe_for(3);
    let b = awe_for(25);
    assert!((a - b).abs() < 1e-12, "{a} vs {b}");
}
