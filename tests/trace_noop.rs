//! The zero-cost claim of the tracing layer, made testable: with the
//! default [`NoopSink`], not a single [`AllocEvent`] is ever *constructed*
//! (every construction site is guarded by `S::ENABLED`), so the global
//! construction counter must not move across an entire untraced run.
//!
//! This lives in its own test binary on purpose: the counter is
//! process-global, so it can only be asserted on when no traced test runs
//! concurrently — and the two phases below must run in this order, in one
//! test function.

use tora::alloc::trace::events_constructed;
use tora::prelude::*;
use tora::workloads::synthetic::SyntheticKind;

#[test]
fn noop_sink_constructs_no_events() {
    let wf = SyntheticKind::Bimodal
        .catalog_workflow()
        .spec(4)
        .tasks(150)
        .materialize()
        .unwrap();
    let config = SimConfig {
        churn: ChurnConfig {
            initial: 4,
            min: 2,
            max: 8,
            mean_interval_s: Some(15.0),
        },
        seed: 5,
        ..SimConfig::default()
    };

    // Phase 1: untraced runs — engine, replay and a bare allocator — must
    // leave the counter untouched.
    let before = events_constructed();
    let res = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);
    assert_eq!(res.metrics.len(), wf.len());
    let _ = replay(
        &wf,
        AlgorithmKind::GreedyBucketing,
        EnforcementModel::LinearRamp,
        1,
    );
    let mut allocator = Allocator::new(AlgorithmKind::MaxSeen, 3);
    let first = allocator.predict_first(CategoryId(0));
    allocator.predict_retry(
        CategoryId(0),
        &first.alloc,
        &ResourceMask::only(ResourceKind::MemoryMb),
    );
    assert_eq!(
        events_constructed(),
        before,
        "NoopSink run constructed trace events"
    );

    // Phase 2: the same workload with a real sink constructs plenty —
    // proving the counter actually observes the construction sites.
    let (traced, (trace, _events)) =
        Simulation::new(&wf, AlgorithmKind::ExhaustiveBucketing, config)
            .with_sink((TraceStats::new(), MemorySink::new()))
            .run_traced();
    assert!(
        events_constructed() > before,
        "traced run constructed no events"
    );
    assert!(trace.overall.total() > 0);
    traced.stats.reconcile(&trace).unwrap();
}
