//! Streaming ≡ materialized: the scaling path must not change physics.
//!
//! `Simulation::from_source` pulls specs lazily from a [`TaskSource`];
//! `Simulation::new` gets the same workload fully materialized. Because the
//! source shares the per-family samplers and RNG streams with
//! [`WorkloadSpec::materialize`], the two runs must be *byte-identical* —
//! same metrics, same stats, same event log, same allocator trace, same
//! fault report — for every catalog workflow and any seed.

use tora::prelude::*;

const SEEDS: [u64; 3] = [1, 7, 42];

/// Scaled-down per-family counts: parity is scale-independent and the full
/// paper counts make a debug-mode 21-run matrix take minutes.
fn scaled_spec(wf: PaperWorkflow, seed: u64) -> WorkloadSpec {
    let spec = wf.spec(seed);
    match wf {
        PaperWorkflow::ColmenaXtb => spec.category_tasks(vec![40, 160]),
        PaperWorkflow::TopEft => spec.category_tasks(vec![40, 400, 25]),
        _ => spec.tasks(200),
    }
}

/// Run one engine to completion and serialize everything observable.
fn fingerprint(sim: Simulation, config: &SimConfig) -> (String, String, String) {
    let (result, sink) = sim.with_sink(MemorySink::default()).run_traced();
    let report = FaultReport::from_result(&result, config, "exhaustive-bucketing").to_json();
    let result_json = serde_json::to_string(&result).expect("result serializes");
    let trace_json = serde_json::to_string(&sink.events).expect("trace serializes");
    (result_json, trace_json, report)
}

fn config_for(seed: u64) -> SimConfig {
    let mut config = SimConfig::paper_like(seed);
    config.record_log = true;
    config.faults = FaultPlan::named("light").expect("preset exists");
    config
}

#[test]
fn streaming_and_materialized_runs_are_byte_identical() {
    for wf in PaperWorkflow::ALL {
        for seed in SEEDS {
            let config = config_for(seed);
            let spec = scaled_spec(wf, seed);
            let materialized = spec.materialize().expect("catalog spec is valid");
            let source = spec.stream().expect("catalog workflows stream");

            let from_workflow = fingerprint(
                Simulation::new(&materialized, AlgorithmKind::ExhaustiveBucketing, config),
                &config,
            );
            let from_stream = fingerprint(
                Simulation::from_source(source, AlgorithmKind::ExhaustiveBucketing, config),
                &config,
            );

            assert_eq!(
                from_workflow.0,
                from_stream.0,
                "{} seed {seed}: SimResult diverged",
                wf.name()
            );
            assert_eq!(
                from_workflow.1,
                from_stream.1,
                "{} seed {seed}: allocator trace diverged",
                wf.name()
            );
            assert_eq!(
                from_workflow.2,
                from_stream.2,
                "{} seed {seed}: fault report diverged",
                wf.name()
            );
        }
    }
}

/// Generated DAG shapes stream too (ISSUE 9 closes the ROADMAP follow-on
/// that DAG specs could not): the source's bounded dependency-lookahead
/// window lets the engine wire dependencies and resolve dead-letter
/// cascades lazily, and the result must still be byte-identical to the
/// materialized run — including the critical-path stats, which the
/// streaming engine accumulates incrementally while the materialized one
/// builds them up front. Heavy faults make the cascade path actually fire.
#[test]
fn dag_shapes_stream_byte_identically() {
    let shapes = [
        DagShape::diamond(3, 5).with_loopback(2),
        DagShape::fan_out_fan_in(12),
        DagShape::pipeline(9).with_loopback(3),
        DagShape::random_layered(4, 4).with_loopback(1),
    ];
    for seed in SEEDS {
        for shape in shapes {
            let mut config = config_for(seed);
            config.faults = FaultPlan::named("heavy").expect("preset exists");
            let spec = PaperWorkflow::Bimodal.spec(seed).dag_shape(shape);
            let materialized = spec.materialize().expect("shaped spec is valid");
            assert!(materialized.has_dependencies());
            let source = spec.stream().expect("generated DAG shapes stream");
            assert!(source.dependency_window() >= 1);

            let from_workflow = fingerprint(
                Simulation::new(&materialized, AlgorithmKind::ExhaustiveBucketing, config),
                &config,
            );
            let from_stream = fingerprint(
                Simulation::from_source(source, AlgorithmKind::ExhaustiveBucketing, config),
                &config,
            );
            assert_eq!(
                from_workflow, from_stream,
                "{shape:?} seed {seed}: streamed DAG diverged"
            );
            assert!(
                from_workflow.0.contains("critical_path"),
                "{shape:?} seed {seed}: critical-path stats missing"
            );
        }
    }
}

/// The feature-conditioned comparators read the per-task feature vector
/// (input-size signal + DAG depth), which is minted on both the streaming
/// and the materialized path — by the catalog source and by
/// `with_dependencies` respectively. Any drift between the two minting
/// paths would move their predictions, so pin byte-identity for both new
/// algorithms across seeds, DAG shapes, and thread counts.
#[test]
fn feature_conditioned_comparators_stream_byte_identically() {
    let shapes = [
        DagShape::diamond(3, 5).with_loopback(2),
        DagShape::random_layered(4, 4).with_loopback(1),
    ];
    for algorithm in [AlgorithmKind::FeatureBinned, AlgorithmKind::SemiBandit] {
        for seed in SEEDS {
            for shape in shapes {
                for threads in [1usize, 4] {
                    let mut config = config_for(seed);
                    config.faults = FaultPlan::named("heavy").expect("preset exists");
                    config.threads = threads;
                    let spec = PaperWorkflow::Bimodal.spec(seed).dag_shape(shape);
                    let materialized = spec.materialize().expect("shaped spec is valid");
                    let source = spec.stream().expect("generated DAG shapes stream");
                    let from_workflow =
                        fingerprint(Simulation::new(&materialized, algorithm, config), &config);
                    let from_stream =
                        fingerprint(Simulation::from_source(source, algorithm, config), &config);
                    assert_eq!(
                        from_workflow, from_stream,
                        "{algorithm} {shape:?} seed {seed} threads {threads}: diverged"
                    );
                }
            }
        }
    }
}

/// The Batch arrival model exercises the bulk `ensure_spec` path (every
/// task pulled during `schedule_arrivals`); pin it separately from the
/// Poisson default above.
#[test]
fn batch_arrivals_stream_identically() {
    let mut config = config_for(3);
    config.arrival = ArrivalModel::Batch;
    let spec = scaled_spec(PaperWorkflow::TopEft, 3);
    let materialized = spec.materialize().unwrap();
    let source = spec.stream().unwrap();
    let a = fingerprint(
        Simulation::new(&materialized, AlgorithmKind::GreedyBucketing, config),
        &config,
    );
    let b = fingerprint(
        Simulation::from_source(source, AlgorithmKind::GreedyBucketing, config),
        &config,
    );
    assert_eq!(a, b);
}
