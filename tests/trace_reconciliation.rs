//! Cross-check the allocator's event stream against the engine's own
//! bookkeeping: the two count the same run from opposite sides, so every
//! tally must match exactly — overall and per category. This is the
//! correctness contract behind `tora trace`.

use tora::prelude::*;
use tora::workloads::synthetic::SyntheticKind;

fn traced_run(
    wf: &Workflow,
    algorithm: AlgorithmKind,
    config: SimConfig,
) -> (SimResult, TraceStats, MemorySink) {
    let sink = (TraceStats::new(), MemorySink::new());
    let (result, (trace, events)) = Simulation::new(wf, algorithm, config)
        .with_sink(sink)
        .run_traced();
    (result, trace, events)
}

#[test]
fn trace_reconciles_for_every_algorithm() {
    let wf = SyntheticKind::Bimodal
        .catalog_workflow()
        .spec(11)
        .tasks(150)
        .materialize()
        .unwrap();
    for alg in AlgorithmKind::PAPER_SET {
        let (result, trace, _) = traced_run(&wf, alg, SimConfig::default());
        result
            .stats
            .reconcile(&trace)
            .unwrap_or_else(|errs| panic!("{alg}: {errs:?}"));
    }
}

#[test]
fn trace_reconciles_under_churn_and_preemption() {
    let wf = SyntheticKind::Exponential
        .catalog_workflow()
        .spec(7)
        .tasks(200)
        .materialize()
        .unwrap();
    let config = SimConfig {
        churn: ChurnConfig {
            initial: 4,
            min: 2,
            max: 8,
            mean_interval_s: Some(15.0),
        },
        seed: 5,
        ..SimConfig::default()
    };
    let (result, trace, _) = traced_run(&wf, AlgorithmKind::GreedyBucketing, config);
    assert!(result.preemptions > 0, "config should force preemptions");
    result.stats.reconcile(&trace).unwrap();
    // Preemptions never reach the allocator: a resubmitted attempt reuses
    // its pinned allocation, so no extra Predict events appear.
    assert_eq!(trace.overall.retry, result.stats.failures);
    assert_eq!(trace.overall.observe, result.stats.completions);
}

#[test]
fn per_category_counts_are_exact() {
    // Multi-category workflow: every category's slice of the event stream
    // must match the engine's per-category tally on its own.
    let wf = tora::workloads::PaperWorkflow::ColmenaXtb.build(3);
    let (result, trace, events) = traced_run(
        &wf,
        AlgorithmKind::ExhaustiveBucketing,
        SimConfig::default(),
    );
    result.stats.reconcile(&trace).unwrap();
    assert!(trace.by_category.len() > 1, "expected several categories");
    for (id, tally) in &trace.by_category {
        let engine = result
            .stats
            .category(CategoryId(*id))
            .unwrap_or_else(|| panic!("engine never saw category {id}"));
        assert_eq!(
            engine.predictions_first,
            tally.predictions_first(),
            "cat {id}"
        );
        assert_eq!(engine.predictions_retry, tally.retry, "cat {id}");
        assert_eq!(engine.observations, tally.observe, "cat {id}");
        assert_eq!(engine.escalations, tally.escalate, "cat {id}");
        // The raw event stream agrees with the counting sink.
        let streamed = events
            .events
            .iter()
            .filter(|e| e.category() == CategoryId(*id))
            .count() as u64;
        assert_eq!(streamed, tally.total(), "cat {id}");
    }
}

#[test]
fn reconcile_flags_a_tampered_tally() {
    let wf = SyntheticKind::Normal
        .catalog_workflow()
        .spec(2)
        .tasks(100)
        .materialize()
        .unwrap();
    let (result, trace, _) = traced_run(&wf, AlgorithmKind::MaxSeen, SimConfig::default());
    let mut stats = result.stats.clone();
    stats.calls.observations += 1;
    let errs = stats.reconcile(&trace).unwrap_err();
    assert!(errs.iter().any(|e| e.contains("observations")), "{errs:?}");
}

#[test]
fn traced_and_untraced_runs_agree() {
    // Attaching a sink must not perturb the simulation itself: identical
    // seeds produce identical metrics with and without tracing.
    let wf = SyntheticKind::Uniform
        .catalog_workflow()
        .spec(9)
        .tasks(120)
        .materialize()
        .unwrap();
    let config = SimConfig {
        seed: 13,
        ..SimConfig::default()
    };
    let plain = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);
    let (traced, trace, _) = traced_run(&wf, AlgorithmKind::ExhaustiveBucketing, config);
    assert_eq!(
        plain.metrics.awe(ResourceKind::MemoryMb),
        traced.metrics.awe(ResourceKind::MemoryMb)
    );
    assert_eq!(plain.makespan_s, traced.makespan_s);
    assert_eq!(plain.stats, traced.stats);
    traced.stats.reconcile(&trace).unwrap();
}
