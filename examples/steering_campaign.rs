//! A Colmena-style steering campaign: the application generates tasks *at
//! runtime*, reacting to results — the defining behaviour of the paper's
//! workflow class (§I: "tasks' definitions and dependencies are generated
//! and inferred at runtime").
//!
//! The campaign mimics ColmenaXTB's loop: rank candidate molecules in
//! batches (`evaluate_mpnn`-like tasks), and whenever a ranking batch
//! returns, submit energy computations (`compute_atomization_energy`-like
//! tasks) for its top candidates. No DAG exists up front — the second phase
//! literally depends on values computed by the first.
//!
//! ```sh
//! cargo run --release --example steering_campaign
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use tora::metrics::{pct, Table};
use tora::prelude::*;
use tora::workloads::dist;

const RANK_BATCHES: usize = 12;
const CANDIDATES_PER_BATCH: usize = 40;
const TOP_K: usize = 25;

const CAT_RANK: u32 = 0;
const CAT_ENERGY: u32 = 1;

struct Campaign {
    rng: StdRng,
    batches_submitted: usize,
    energy_submitted: usize,
}

impl Campaign {
    fn new(seed: u64) -> Self {
        Campaign {
            rng: StdRng::seed_from_u64(seed),
            batches_submitted: 0,
            energy_submitted: 0,
        }
    }

    fn submit_rank_batch(&mut self, api: &mut SubmitApi) {
        // Ranking inference: ~1.1 GB of memory, about one core.
        let peak = ResourceVector::new(
            dist::normal(&mut self.rng, 1.0, 0.05).max(0.5),
            dist::uniform(&mut self.rng, 1024.0, 1228.0),
            dist::uniform(&mut self.rng, 8.0, 12.0),
        );
        let duration = dist::lognormal(&mut self.rng, 120.0f64.ln(), 0.3).clamp(30.0, 600.0);
        api.submit(CAT_RANK, peak, duration);
        self.batches_submitted += 1;
    }
}

impl Driver for Campaign {
    fn on_start(&mut self, api: &mut SubmitApi) {
        // Keep a few ranking batches in flight from the beginning.
        for _ in 0..4 {
            self.submit_rank_batch(api);
        }
    }

    fn on_task_complete(&mut self, task: &TaskSpec, api: &mut SubmitApi) {
        if task.category.0 != CAT_RANK {
            return;
        }
        // The "result" of a ranking batch: its top candidates go to the
        // energy stage — stochastic core usage, ~200 MB memory (§III-B).
        let promoted = TOP_K.min(CANDIDATES_PER_BATCH);
        for _ in 0..promoted {
            let peak = ResourceVector::new(
                dist::uniform(&mut self.rng, 0.9, 3.6),
                dist::normal(&mut self.rng, 200.0, 15.0).max(120.0),
                dist::uniform(&mut self.rng, 8.0, 12.0),
            );
            let duration = dist::lognormal(&mut self.rng, 180.0f64.ln(), 0.6).clamp(20.0, 1800.0);
            api.submit(CAT_ENERGY, peak, duration);
            self.energy_submitted += 1;
        }
        // Steer: keep ranking until the molecule pool is exhausted.
        if self.batches_submitted < RANK_BATCHES {
            self.submit_rank_batch(api);
        }
    }
}

fn main() {
    let config = SimConfig {
        record_log: true,
        ..SimConfig::paper_like(33)
    };
    let sim = Simulation::with_driver(
        Box::new(Campaign::new(33)),
        WorkerSpec::paper_default(),
        AlgorithmKind::ExhaustiveBucketing,
        config,
    );
    let res = sim.run();
    let log = res.log.as_ref().expect("log enabled");
    log.check_consistency().expect("consistent run");

    println!(
        "campaign finished: {} tasks generated at runtime, makespan {:.0} s\n",
        res.metrics.len(),
        res.makespan_s
    );
    let mut table = Table::new(
        "per-category results (Exhaustive Bucketing)",
        &["category", "tasks", "cores AWE", "memory AWE", "retries"],
    );
    for (id, name) in [
        (CAT_RANK, "rank_candidates"),
        (CAT_ENERGY, "compute_energy"),
    ] {
        let m = res.metrics.filter_category(CategoryId(id));
        table.row(&[
            name.to_string(),
            m.len().to_string(),
            pct(m.awe(ResourceKind::Cores).unwrap()),
            pct(m.awe(ResourceKind::MemoryMb).unwrap()),
            m.total_retries().to_string(),
        ]);
    }
    print!("{}", table.render());

    // The generation pattern is visible in the log: energy submissions only
    // ever follow ranking completions.
    let first_energy_submit = log
        .entries()
        .iter()
        .find(|e| matches!(e.event, SimEvent::TaskSubmitted { task } if task.0 >= 4))
        .map(|e| e.time_s)
        .unwrap_or_default();
    println!(
        "\nfirst runtime-generated submission at t = {first_energy_submit:.0} s \
         (after the first ranking batch returned)"
    );
    assert!(first_energy_submit > 0.0);
}
