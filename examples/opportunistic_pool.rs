//! Opportunistic-pool observability: churn, preemption, utilization and the
//! live bucketing state.
//!
//! Runs a Uniform workflow on a heavily churning pool with the event log and
//! utilization tracking enabled, then prints what happened: worker band,
//! preemptions, the utilization the administrator would see, a downsampled
//! utilization sparkline, and the final bucket structure the allocator
//! learned.
//!
//! ```sh
//! cargo run --release --example opportunistic_pool
//! ```

use tora::metrics::{pct, Table};
use tora::prelude::*;

fn main() {
    let workflow = PaperWorkflow::Uniform
        .spec(21)
        .tasks(800)
        .materialize()
        .unwrap();
    let config = SimConfig {
        churn: ChurnConfig {
            initial: 6,
            min: 10,
            max: 30,
            mean_interval_s: Some(20.0),
        },
        record_log: true,
        track_utilization: true,
        ..SimConfig::paper_like(21)
    };
    let result = simulate(&workflow, AlgorithmKind::ExhaustiveBucketing, config);

    println!("== run summary ==");
    println!("tasks           : {}", result.metrics.len());
    println!("makespan        : {:.0} s", result.makespan_s);
    println!(
        "worker band     : {}..{} workers",
        result.worker_range.0, result.worker_range.1
    );
    println!("preemptions     : {}", result.preemptions);
    println!("retries (kills) : {}", result.metrics.total_retries());
    println!(
        "memory AWE      : {}",
        pct(result.metrics.awe(ResourceKind::MemoryMb).unwrap())
    );

    // Event-log census — the JSONL dump is what a monitoring pipeline would
    // ingest.
    let log = result.log.expect("log enabled");
    log.check_consistency().expect("run is self-consistent");
    println!("\n== event log ({} entries) ==", log.len());
    for (label, pred) in [
        ("dispatched", |e: &SimEvent| {
            matches!(e, SimEvent::TaskDispatched { .. })
        }),
        ("completed", |e: &SimEvent| {
            matches!(e, SimEvent::TaskCompleted { .. })
        }),
        ("killed", |e: &SimEvent| {
            matches!(e, SimEvent::TaskKilled { .. })
        }),
        ("preempted", |e: &SimEvent| {
            matches!(e, SimEvent::TaskPreempted { .. })
        }),
        ("worker joins", |e: &SimEvent| {
            matches!(e, SimEvent::WorkerJoined { .. })
        }),
        ("worker leaves", |e: &SimEvent| {
            matches!(e, SimEvent::WorkerLeft { .. })
        }),
    ] as [(&str, fn(&SimEvent) -> bool); 6]
    {
        println!("  {label:<13}: {}", log.count(pred));
    }

    // Utilization over time: mean + a coarse sparkline of memory pressure.
    let series = result.utilization.expect("utilization enabled");
    println!("\n== pool utilization ==");
    let mut table = Table::new("", &["resource", "time-weighted mean", "peak running"]);
    for kind in [
        ResourceKind::Cores,
        ResourceKind::MemoryMb,
        ResourceKind::DiskMb,
    ] {
        table.row(&[
            kind.label().to_string(),
            pct(series.mean_utilization(kind).unwrap_or(0.0)),
            series.peak_running().to_string(),
        ]);
    }
    print!("{}", table.render());
    let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#'];
    let spark: String = series
        .downsample(60)
        .samples()
        .iter()
        .map(|s| {
            let u = s.utilization(ResourceKind::MemoryMb).unwrap_or(0.0);
            glyphs[((u * (glyphs.len() - 1) as f64).round() as usize).min(glyphs.len() - 1)]
        })
        .collect();
    println!("memory pressure over time: [{spark}]");

    // What the allocator learned: the bucket structure behind its
    // predictions (Fig. 3b of the paper, live).
    let mut allocator = Allocator::new(AlgorithmKind::ExhaustiveBucketing, 21);
    for task in &workflow.tasks {
        allocator.observe(&ResourceRecord::from_task(task));
    }
    // Bucketing is lazy: force the recomputation now, then take a read-only
    // snapshot of the result (`snapshot` alone never recomputes).
    let info = allocator
        .rebucket(CategoryId(0), ResourceKind::MemoryMb)
        .expect("records observed");
    let set = allocator
        .snapshot(CategoryId(0), ResourceKind::MemoryMb)
        .expect("bucketing state exists");
    println!(
        "\n== learned memory buckets ({} from {} records, expected waste {:.3e}) ==",
        set.len(),
        info.n_records,
        info.cost
    );
    let mut buckets = Table::new(
        "",
        &["bucket", "representative (MB)", "probability", "records"],
    );
    for (i, b) in set.buckets().iter().enumerate() {
        buckets.row(&[
            format!("B{}", i + 1),
            format!("{:.0}", b.rep),
            pct(b.prob),
            b.count.to_string(),
        ]);
    }
    print!("{}", buckets.render());
}
