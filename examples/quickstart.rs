//! Quickstart: allocate a small dynamic workflow with every algorithm and
//! compare efficiencies.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tora::metrics::{pct, Table};
use tora::prelude::*;

fn main() {
    // A 500-task workflow whose memory consumption is bimodal — the
    // "specialization of tasks" pattern of the paper's §III case study.
    let workflow = PaperWorkflow::Bimodal
        .spec(42)
        .tasks(500)
        .materialize()
        .unwrap();
    println!(
        "workflow `{}`: {} tasks on workers of {}\n",
        workflow.name,
        workflow.len(),
        workflow.worker.capacity
    );

    let mut table = Table::new(
        "Absolute Workflow Efficiency by algorithm",
        &[
            "algorithm",
            "cores",
            "memory",
            "disk",
            "retries",
            "makespan",
        ],
    );
    for algorithm in AlgorithmKind::PAPER_SET {
        // An opportunistic pool that ramps from 8 workers into a 20–50 band,
        // with tasks generated at runtime — the paper's §V-A setting.
        let result = simulate(&workflow, algorithm, SimConfig::paper_like(42));
        table.row(&[
            algorithm.label().to_string(),
            pct(result.metrics.awe(ResourceKind::Cores).unwrap()),
            pct(result.metrics.awe(ResourceKind::MemoryMb).unwrap()),
            pct(result.metrics.awe(ResourceKind::DiskMb).unwrap()),
            result.metrics.total_retries().to_string(),
            format!("{:.0}s", result.makespan_s),
        ]);
    }
    print!("{}", table.render());

    // The allocator is also usable directly, without the simulator: feed it
    // completed-task records and ask for allocations.
    let mut allocator = Allocator::new(AlgorithmKind::ExhaustiveBucketing, 1);
    for task in &workflow.tasks {
        allocator.observe(&ResourceRecord::from_task(task));
    }
    let next = allocator.predict_first(CategoryId(0));
    println!(
        "\nwith all {} records observed, the next task would be allocated {}",
        workflow.len(),
        next
    );
}
