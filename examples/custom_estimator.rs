//! Extending the allocator: plug a custom estimator into the framework.
//!
//! The paper's architecture (§IV-A) cleanly separates the *bucketing
//! manager* from the scheduler, so new allocation strategies drop in behind
//! the same two operations (observe a record, answer an allocation request).
//! This example implements a naive "p95 + 20% headroom" estimator, runs it
//! through the full allocator/simulator machinery via
//! [`Allocator::with_factory`], and compares it against Exhaustive
//! Bucketing. It also demonstrates managing a *fourth* resource axis (GPUs)
//! — the extensibility called out in §VII.

use tora::alloc::allocator::EstimatorFactory;
use tora::alloc::{Prediction, RecordList, ValueEstimator};
use tora::metrics::{pct, Table};
use tora::prelude::*;

/// Allocate the 95th percentile of observed values plus 20% headroom;
/// double on failure.
struct P95Headroom {
    records: RecordList,
}

impl P95Headroom {
    fn new() -> Self {
        P95Headroom {
            records: RecordList::new(),
        }
    }
}

impl ValueEstimator for P95Headroom {
    fn name(&self) -> &'static str {
        "p95-headroom"
    }

    fn observe(&mut self, value: f64, sig: f64) {
        self.records.observe(value, sig);
    }

    fn len(&self) -> usize {
        self.records.len()
    }

    fn predict_first(&mut self, _ctx: &TaskContext, _u: f64) -> Option<Prediction> {
        // A deterministic point estimate — the provenance shows up in
        // traced runs as `AllocSource::Point`. Quantiles need the sorted
        // order, so fold any pending observations first.
        self.records.commit();
        self.records
            .quantile(0.95)
            .map(|v| Prediction::point(v * 1.2))
    }

    fn predict_retry(&mut self, _ctx: &TaskContext, prev: f64, _u: f64) -> Option<Prediction> {
        if self.records.is_empty() {
            None
        } else {
            Some(Prediction::doubling(prev * 2.0))
        }
    }
}

fn main() {
    let workflow = PaperWorkflow::Normal
        .spec(5)
        .tasks(600)
        .materialize()
        .unwrap();

    let factory: EstimatorFactory = Box::new(|_kind, _machine| Box::new(P95Headroom::new()));
    let config = AllocatorConfig {
        exploratory: Some(ExploratoryPolicy::paper_conservative()),
        ..AllocatorConfig::default()
    };
    let mut custom = Allocator::with_factory("p95-headroom", factory, config, 5);

    // Drive the custom allocator through a serial replay by hand (the same
    // loop `tora_sim::replay` runs internally).
    let enforcement = EnforcementModel::LinearRamp;
    let mut metrics = WorkflowMetrics::new();
    for task in &workflow.tasks {
        let mut attempts = Vec::new();
        let mut alloc = custom.predict_first(task.category).into_alloc();
        loop {
            let verdict = enforcement.judge(task, &alloc);
            if verdict.success {
                attempts.push(AttemptOutcome::success(alloc, verdict.charged_time_s));
                break;
            }
            attempts.push(AttemptOutcome::failure(alloc, verdict.charged_time_s));
            alloc = custom
                .predict_retry(task.category, &alloc, &verdict.exhausted)
                .into_alloc();
        }
        metrics.push(TaskOutcome {
            task: task.id,
            category: task.category,
            peak: task.peak,
            duration_s: task.duration_s,
            attempts,
        });
        custom.observe(&ResourceRecord::from_task(task));
    }

    let reference = replay(
        &workflow,
        AlgorithmKind::ExhaustiveBucketing,
        enforcement,
        5,
    );

    let mut table = Table::new(
        "custom estimator vs Exhaustive Bucketing (serial replay)",
        &["allocator", "cores AWE", "memory AWE", "retries"],
    );
    for (name, m) in [
        ("p95-headroom", &metrics),
        ("exhaustive-bucketing", &reference),
    ] {
        table.row(&[
            name.to_string(),
            pct(m.awe(ResourceKind::Cores).unwrap()),
            pct(m.awe(ResourceKind::MemoryMb).unwrap()),
            m.total_retries().to_string(),
        ]);
    }
    print!("{}", table.render());

    // Extensibility: manage the GPU axis too. Build a workflow where tasks
    // consume 1 GPU and let the allocator manage all four dimensions.
    let worker = WorkerSpec::new(
        ResourceVector::new(16.0, 65536.0, 65536.0).with(tora::alloc::ResourceKind::Gpus, 4.0),
    );
    let mut gpu_alloc = Allocator::with_config(
        AlgorithmKind::ExhaustiveBucketing,
        AllocatorConfig {
            machine: worker,
            managed: vec![
                ResourceKind::Cores,
                ResourceKind::MemoryMb,
                ResourceKind::DiskMb,
                ResourceKind::Gpus,
            ],
            ..AllocatorConfig::default()
        },
        5,
    );
    for id in 0..50u64 {
        let peak = ResourceVector::new(1.0, 500.0, 100.0).with(ResourceKind::Gpus, 1.0);
        gpu_alloc.observe(&ResourceRecord::from_task(&TaskSpec::new(
            id, 0, peak, 30.0,
        )));
    }
    let next = gpu_alloc.predict_first(CategoryId(0));
    println!(
        "\nfour-axis allocation with GPUs managed: {next} + {} gpus",
        next.gpus()
    );
}
