//! The ColmenaXTB scenario: a molecular-screening campaign whose two task
//! categories differ sharply in resource appetite (§III).
//!
//! `evaluate_mpnn` ranks candidate molecules with ~1.1 GB of memory per
//! task; `compute_atomization_energy` runs molecular dynamics at ~200 MB but
//! wildly varying core counts (0.9–3.6). The example shows why per-category
//! allocation matters: a single shared estimator would smear the two
//! categories together.
//!
//! ```sh
//! cargo run --release --example molecular_screening
//! ```

use tora::metrics::{pct, Table};
use tora::prelude::*;
use tora::workloads::colmena;

fn main() {
    let workflow = PaperWorkflow::ColmenaXtb.build(7);
    println!(
        "ColmenaXTB-shaped campaign: {} ranking + {} energy tasks\n",
        colmena::EVALUATE_MPNN_TASKS,
        colmena::COMPUTE_ENERGY_TASKS
    );

    let result = simulate(
        &workflow,
        AlgorithmKind::ExhaustiveBucketing,
        SimConfig::paper_like(7),
    );

    // Per-category efficiency: the §III-B specialization shows up directly.
    let mut table = Table::new(
        "Exhaustive Bucketing, per-category results",
        &["category", "tasks", "cores AWE", "memory AWE", "retries"],
    );
    for (idx, name) in workflow.categories.iter().enumerate() {
        let per_cat = result.metrics.filter_category(CategoryId(idx as u32));
        table.row(&[
            name.clone(),
            per_cat.len().to_string(),
            pct(per_cat.awe(ResourceKind::Cores).unwrap()),
            pct(per_cat.awe(ResourceKind::MemoryMb).unwrap()),
            per_cat.total_retries().to_string(),
        ]);
    }
    print!("{}", table.render());

    // The phase change: once the workflow switches from ranking to energy
    // tasks, the significance weighting pulls allocations down from ~1.1 GB
    // to the ~200 MB the new phase needs.
    let mut allocator = Allocator::new(AlgorithmKind::ExhaustiveBucketing, 7);
    for task in &workflow.tasks {
        allocator.observe(&ResourceRecord::from_task(task));
    }
    let rank_alloc = allocator.predict_first(CategoryId(colmena::CAT_EVALUATE_MPNN));
    let energy_alloc = allocator.predict_first(CategoryId(colmena::CAT_COMPUTE_ENERGY));
    println!("\nsteady-state allocations:");
    println!("  evaluate_mpnn              → {rank_alloc}");
    println!("  compute_atomization_energy → {energy_alloc}");
    assert!(
        rank_alloc.memory_mb() > 2.0 * energy_alloc.memory_mb(),
        "category independence keeps the memory profiles apart"
    );
}
