//! Dependency-structured execution: the Figure-1 workflow-manager view.
//!
//! Runs TopEFT twice — as the flat task bag used for the paper's metrics,
//! and with its Coffea dependency structure (preprocessing → processing →
//! accumulating) — and shows that allocation efficiency is essentially
//! unchanged while the execution timeline stretches (dependency chains limit
//! parallelism; the allocator is deliberately orthogonal to ordering,
//! §II-D1).
//!
//! ```sh
//! cargo run --release --example dag_workflow
//! ```

use tora::metrics::{pct, Table};
use tora::prelude::*;

fn main() {
    let flat = PaperWorkflow::TopEft
        .spec(17)
        .category_tasks(vec![60, 700, 40])
        .materialize()
        .unwrap();
    let dag = PaperWorkflow::TopEft
        .spec(17)
        .category_tasks(vec![60, 700, 40])
        .dag()
        .materialize()
        .unwrap();
    assert!(!flat.has_dependencies());
    assert!(dag.has_dependencies());

    let mut table = Table::new(
        "TopEFT, flat vs DAG submission (Exhaustive Bucketing)",
        &["structure", "memory AWE", "disk AWE", "retries", "makespan"],
    );
    for wf in [&flat, &dag] {
        let config = SimConfig {
            record_log: true,
            ..SimConfig::paper_like(17)
        };
        let res = simulate(wf, AlgorithmKind::ExhaustiveBucketing, config);
        res.log
            .as_ref()
            .expect("log enabled")
            .check_consistency()
            .expect("consistent run");
        table.row(&[
            if wf.has_dependencies() { "dag" } else { "flat" }.to_string(),
            pct(res.metrics.awe(ResourceKind::MemoryMb).unwrap()),
            pct(res.metrics.awe(ResourceKind::DiskMb).unwrap()),
            res.metrics.total_retries().to_string(),
            format!("{:.0}s", res.makespan_s),
        ]);
    }
    print!("{}", table.render());

    // Show the dependency fan-in of the accumulating stage.
    let total_deps: usize = (0..dag.len()).map(|i| dag.deps_of(i).len()).sum();
    let acc_start = 60 + 700;
    let fan_in: Vec<usize> = (acc_start..dag.len())
        .map(|i| dag.deps_of(i).len())
        .collect();
    println!(
        "\n{} edges; accumulating fan-in min {} / max {}",
        total_deps,
        fan_in.iter().min().unwrap(),
        fan_in.iter().max().unwrap()
    );
}
