//! The money view: what better allocation is worth on opportunistic
//! (spot-priced) resources.
//!
//! §I motivates opportunistic deployment with up-to-91%-discounted spot
//! capacity. This example builds a custom two-category workload with the
//! declarative builder, runs it under every algorithm, and prices the runs
//! with the cost model — the AWE gap becomes a dollar gap.
//!
//! ```sh
//! cargo run --release --example spot_economics
//! ```

use tora::metrics::{pct, CostModel, Table};
use tora::prelude::*;
use tora::workloads::builder::{CategorySpec, WorkflowBuilder};
use tora::workloads::Dist;

fn main() {
    // An image-analysis-flavoured workload: many light inference tasks and
    // a long tail of heavy training tasks, interleaved.
    let workflow = WorkflowBuilder::new("inference-plus-training")
        .category(CategorySpec {
            name: "inference".into(),
            count: 700,
            cores: Dist::Normal {
                mean: 1.0,
                std_dev: 0.1,
                min: 0.2,
            },
            memory_mb: Dist::Normal {
                mean: 800.0,
                std_dev: 80.0,
                min: 100.0,
            },
            disk_mb: Dist::Constant(250.0),
            duration_s: Dist::Uniform { lo: 20.0, hi: 90.0 },
        })
        .category(CategorySpec {
            name: "training".into(),
            count: 120,
            cores: Dist::Uniform { lo: 4.0, hi: 12.0 },
            memory_mb: Dist::Exponential {
                offset: 4096.0,
                mean: 4096.0,
                max: 60000.0,
            },
            disk_mb: Dist::Constant(2048.0),
            duration_s: Dist::Uniform {
                lo: 300.0,
                hi: 1200.0,
            },
        })
        .interleave(true)
        .build(77);

    let spot = CostModel::spot();
    let on_demand = CostModel::on_demand();

    let mut table = Table::new(
        "what each allocator's run costs (spot pricing, 91% discount)",
        &[
            "algorithm",
            "memory AWE",
            "$ paid",
            "$ useful",
            "$ wasted",
            "$ on-demand",
        ],
    );
    let mut bills = Vec::new();
    for algorithm in AlgorithmKind::PAPER_SET {
        let result = simulate(&workflow, algorithm, SimConfig::paper_like(77));
        let bill = spot.bill(&result.metrics);
        let od = on_demand.bill(&result.metrics);
        table.row(&[
            algorithm.label().to_string(),
            pct(result.metrics.awe(ResourceKind::MemoryMb).unwrap()),
            format!("${:.2}", bill.allocated),
            format!("${:.2}", bill.consumed),
            format!("${:.2}", bill.wasted()),
            format!("${:.2}", od.allocated),
        ]);
        bills.push((algorithm, bill));
    }
    print!("{}", table.render());

    let (_, worst) = bills
        .iter()
        .find(|(a, _)| *a == AlgorithmKind::WholeMachine)
        .unwrap();
    let (_, best) = bills
        .iter()
        .find(|(a, _)| *a == AlgorithmKind::ExhaustiveBucketing)
        .unwrap();
    println!(
        "\nExhaustive Bucketing pays ${:.2} for work Whole Machine pays ${:.2} for \
         ({}x cheaper); the useful work itself is worth ${:.2} either way.",
        best.allocated,
        worst.allocated,
        (worst.allocated / best.allocated).round(),
        best.consumed,
    );
}
