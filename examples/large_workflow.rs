//! The paper's future-work hypothesis (§VII): on workflows beyond 10,000
//! tasks the bucketing algorithms should do even better, because the
//! exploratory phase and early mispredictions amortize while the steady
//! state dominates.
//!
//! Runs a 12,000-task TopEFT-shaped workflow and a 1,000-task one under
//! Exhaustive Bucketing and compares efficiencies.
//!
//! ```sh
//! cargo run --release --example large_workflow
//! ```

use tora::metrics::{pct, Table};
use tora::prelude::*;

fn main() {
    let small = PaperWorkflow::TopEft
        .spec(3)
        .category_tasks(vec![80, 880, 40])
        .materialize()
        .unwrap(); // ~1,000 tasks
    let large = PaperWorkflow::TopEft
        .spec(3)
        .category_tasks(vec![800, 10_700, 500])
        .materialize()
        .unwrap(); // ~12,000 tasks

    let mut table = Table::new(
        "Exhaustive Bucketing: small vs >10k-task workflow (§VII hypothesis)",
        &[
            "workflow",
            "tasks",
            "cores AWE",
            "memory AWE",
            "disk AWE",
            "retries/task",
        ],
    );
    let mut memory_awe = Vec::new();
    for wf in [&small, &large] {
        let result = simulate(
            wf,
            AlgorithmKind::ExhaustiveBucketing,
            SimConfig::paper_like(3),
        );
        let mem = result.metrics.awe(ResourceKind::MemoryMb).unwrap();
        memory_awe.push(mem);
        table.row(&[
            format!("topeft-{}", wf.len()),
            wf.len().to_string(),
            pct(result.metrics.awe(ResourceKind::Cores).unwrap()),
            pct(mem),
            pct(result.metrics.awe(ResourceKind::DiskMb).unwrap()),
            format!(
                "{:.2}",
                result.metrics.total_retries() as f64 / wf.len() as f64
            ),
        ]);
    }
    print!("{}", table.render());

    println!(
        "\nmemory efficiency {} from {} to {} as the workflow grows 12x",
        if memory_awe[1] >= memory_awe[0] {
            "improves"
        } else {
            "drops"
        },
        pct(memory_awe[0]),
        pct(memory_awe[1]),
    );
}
