//! The TopEFT scenario: an LHC event-analysis workflow with three phases
//! (preprocessing → processing → accumulating, §III).
//!
//! The interesting structure: disk consumption is *constant* (306 MB per
//! task), processing memory is bimodal (~450 MB vs ~580 MB clusters), and
//! cores are mostly ≤ 1 with rare 3-core outliers. The example contrasts
//! the bucketing allocator against Max Seen on exactly the §V-C talking
//! points: near-perfect disk for bucketing vs the 500 MB histogram rounding
//! of Max Seen.
//!
//! ```sh
//! cargo run --release --example collider_analysis
//! ```

use tora::metrics::{pct, Table};
use tora::prelude::*;
use tora::workloads::topeft;

fn main() {
    let workflow = PaperWorkflow::TopEft.build(11);
    println!(
        "TopEFT-shaped analysis: {} preprocessing / {} processing / {} accumulating tasks\n",
        topeft::PREPROCESSING_TASKS,
        topeft::PROCESSING_TASKS,
        topeft::ACCUMULATING_TASKS
    );

    let mut table = Table::new(
        "TopEFT under two allocators",
        &[
            "algorithm",
            "cores AWE",
            "memory AWE",
            "disk AWE",
            "retries",
        ],
    );
    let mut steady_disk = Vec::new();
    for algorithm in [AlgorithmKind::ExhaustiveBucketing, AlgorithmKind::MaxSeen] {
        let result = simulate(&workflow, algorithm, SimConfig::paper_like(11));
        table.row(&[
            algorithm.label().to_string(),
            pct(result.metrics.awe(ResourceKind::Cores).unwrap()),
            pct(result.metrics.awe(ResourceKind::MemoryMb).unwrap()),
            pct(result.metrics.awe(ResourceKind::DiskMb).unwrap()),
            result.metrics.total_retries().to_string(),
        ]);

        // What does each allocator give a steady-state processing task?
        let mut allocator = Allocator::new(algorithm, 11);
        for task in &workflow.tasks {
            allocator.observe(&ResourceRecord::from_task(task));
        }
        let alloc = allocator.predict_first(CategoryId(topeft::CAT_PROCESSING));
        steady_disk.push((algorithm, alloc.disk_mb()));
    }
    print!("{}", table.render());

    println!("\nsteady-state disk allocation for a 306 MB processing task:");
    for (algorithm, disk) in steady_disk {
        println!("  {:<22} → {disk:.0} MB", algorithm.label());
    }
    // §V-C: Max Seen's histogram (bucket size 250) rounds 306 MB up to
    // 500 MB; the bucketing allocator allocates the representative 306 MB.
}
